"""Fault spec validation and deterministic plan resolution."""

import dataclasses

import pytest

from repro.faults.plan import (
    SiteFaultPlan,
    build_site_plan,
    derive_fault_seed,
    scenario_fault_plans,
)
from repro.faults.spec import FaultSpec, SiteOutageSpec
from repro.scenarios.specs import (
    FleetSpec,
    ScenarioSpec,
    ServerClassSpec,
    SiteSpec,
)

_SITE_FLEET = FleetSpec(classes=(ServerClassSpec("standard", 4),))


def federated(faults=None, site_faults=(None, None)):
    return ScenarioSpec(
        name="fed-faults",
        description="two-site fault test scenario",
        sites=(
            SiteSpec("a", _SITE_FLEET, faults=site_faults[0]),
            SiteSpec("b", _SITE_FLEET, faults=site_faults[1]),
        ),
        federation="least-loaded",
        faults=faults,
    )


class TestSpecValidation:
    def test_null_spec_is_null(self):
        assert FaultSpec().is_null()
        assert not FaultSpec(crashes_per_server=0.5).is_null()
        assert not FaultSpec(job_failure_prob=0.1).is_null()
        assert not FaultSpec(straggler_prob=0.1).is_null()
        assert not FaultSpec(
            site_outages=(SiteOutageSpec(0, 0.1, 0.1),)
        ).is_null()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(crashes_per_server=-1.0),
            dict(crash_recovery_fraction=0.0),
            dict(crash_recovery_fraction=1.5),
            dict(job_failure_prob=1.5),
            dict(straggler_prob=-0.1),
            dict(straggler_factor=0.5),
            dict(max_retries=-1),
            dict(retry_backoff_s=0.0),
        ],
    )
    def test_bad_fault_spec_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(site=-1, start_fraction=0.1, duration_fraction=0.1),
            dict(site=0, start_fraction=1.0, duration_fraction=0.1),
            dict(site=0, start_fraction=0.1, duration_fraction=0.0),
        ],
    )
    def test_bad_outage_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SiteOutageSpec(**kwargs)

    def test_site_level_outages_rejected(self):
        with pytest.raises(ValueError, match="site_outages"):
            SiteSpec(
                "a",
                _SITE_FLEET,
                faults=FaultSpec(site_outages=(SiteOutageSpec(0, 0.1, 0.1),)),
            )

    def test_outage_site_index_must_exist(self):
        faults = FaultSpec(site_outages=(SiteOutageSpec(5, 0.1, 0.1),))
        with pytest.raises(ValueError, match="site"):
            federated(faults=faults)
        with pytest.raises(ValueError, match="site"):
            ScenarioSpec(
                name="single", description="no sites", faults=faults
            )

    def test_faults_flow_into_content_key(self):
        plain = ScenarioSpec(name="x", description="d")
        faulted = dataclasses.replace(
            plain, faults=FaultSpec(job_failure_prob=0.1)
        )
        assert plain.content_dict() != faulted.content_dict()
        # Cosmetic rename never changes the key; a fault knob always does.
        renamed = dataclasses.replace(faulted, name="y")
        assert renamed.content_dict() == faulted.content_dict()


class TestPlans:
    def test_build_site_plan_deterministic(self):
        spec = FaultSpec(crashes_per_server=1.0)
        a = build_site_plan(spec, 4, 1000.0, seed=7)
        b = build_site_plan(spec, 4, 1000.0, seed=7)
        assert a == b
        assert build_site_plan(spec, 4, 1000.0, seed=8) != a

    def test_crash_times_sorted_and_in_horizon(self):
        plan = build_site_plan(
            FaultSpec(crashes_per_server=2.0), 6, 500.0, seed=0
        )
        times = [c.time for c in plan.crashes]
        assert times == sorted(times)
        assert all(0.0 <= t <= 500.0 for t in times)
        assert all(0 <= c.server_id < 6 for c in plan.crashes)

    def test_outage_expands_to_every_server(self):
        plan = build_site_plan(
            FaultSpec(), 3, 1000.0, seed=0, outages=((0.2, 0.1),)
        )
        assert len(plan.crashes) == 3
        assert {c.server_id for c in plan.crashes} == {0, 1, 2}
        assert all(c.time == 200.0 and c.recovery == 100.0 for c in plan.crashes)

    def test_fault_seed_is_independent_of_cell_seed_stream(self):
        assert derive_fault_seed(0) != 0
        assert derive_fault_seed(0) != derive_fault_seed(1)

    def test_scenario_without_faults_resolves_to_none(self):
        plain = ScenarioSpec(name="x", description="d")
        assert scenario_fault_plans(plain, 100, 0) is None
        nulled = dataclasses.replace(plain, faults=FaultSpec())
        assert scenario_fault_plans(nulled, 100, 0) is None
        assert scenario_fault_plans(federated(), 100, 0) is None

    def test_single_cluster_plan(self):
        spec = ScenarioSpec(
            name="x", description="d", faults=FaultSpec(crashes_per_server=1.0)
        )
        plans = scenario_fault_plans(spec, 100, 0)
        assert len(plans) == 1
        assert isinstance(plans[0], SiteFaultPlan)
        assert plans == scenario_fault_plans(spec, 100, 0)

    def test_site_spec_overrides_scenario_spec(self):
        scen = FaultSpec(job_failure_prob=0.1)
        override = FaultSpec(job_failure_prob=0.5)
        spec = federated(faults=scen, site_faults=(override, None))
        plans = scenario_fault_plans(spec, 100, 0)
        assert plans[0].spec is override
        assert plans[1].spec is scen

    def test_outage_only_site_still_gets_a_plan(self):
        spec = federated(
            faults=FaultSpec(site_outages=(SiteOutageSpec(1, 0.3, 0.2),))
        )
        plans = scenario_fault_plans(spec, 100, 0)
        assert plans[0] is None  # outage targets site 1 only
        assert plans[1] is not None
        assert len(plans[1].crashes) == _SITE_FLEET.num_servers

    def test_per_site_seeds_differ(self):
        spec = federated(faults=FaultSpec(crashes_per_server=1.0))
        plans = scenario_fault_plans(spec, 100, 0)
        assert plans[0].seed != plans[1].seed
