"""Chaos property tests: conservation, determinism, monotone clocks.

Hypothesis drives random workloads through randomly-parameterized fault
plans (cluster and federation) and asserts the invariants the runtime
guarantees no matter what breaks:

* **Job conservation** — every offered job is eventually completed or
  explicitly failed; nothing is silently dropped by a crash, reroute,
  or retry.
* **Monotone event clock** — fault events never push the simulation
  clock backwards.
* **Same-seed determinism** — a faulted run is a pure function of
  (workload, plan): re-running it reproduces every metric bit-for-bit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import AlwaysOnPolicy, RoundRobinBroker
from repro.faults.inject import install_faults
from repro.faults.plan import build_site_plan
from repro.faults.spec import FaultSpec
from repro.sim.federation import build_federation
from repro.sim.job import Job


@st.composite
def job_streams(draw, max_jobs=20):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    arrivals = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1500.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    jobs = []
    for i, arrival in enumerate(arrivals):
        duration = draw(st.floats(min_value=1.0, max_value=300.0))
        cpu = draw(st.floats(min_value=0.05, max_value=0.9))
        jobs.append(Job(i, arrival, duration, (cpu, 0.1, 0.1)))
    return jobs


@st.composite
def fault_specs(draw):
    return FaultSpec(
        crashes_per_server=draw(st.floats(min_value=0.0, max_value=2.0)),
        crash_recovery_fraction=draw(st.floats(min_value=0.01, max_value=0.2)),
        job_failure_prob=draw(st.floats(min_value=0.0, max_value=0.4)),
        straggler_prob=draw(st.floats(min_value=0.0, max_value=0.4)),
        straggler_factor=draw(st.floats(min_value=1.0, max_value=4.0)),
        max_retries=draw(st.integers(min_value=0, max_value=3)),
        retry_backoff_s=draw(st.floats(min_value=1.0, max_value=60.0)),
    )


def build_engine(n_sites, num_servers=2):
    return build_federation(
        [
            dict(
                name=f"s{i}",
                num_servers=num_servers,
                broker=RoundRobinBroker(),
                policies=AlwaysOnPolicy(),
                initially_on=True,
            )
            for i in range(n_sites)
        ]
    )


def run_faulted(streams, spec, seed, num_servers=2):
    n_sites = len(streams)
    engine = build_engine(n_sites, num_servers)
    plans = [
        build_site_plan(spec, num_servers, 2000.0, seed + i)
        for i in range(n_sites)
    ]
    runtime = install_faults(engine, plans)
    scheduled = []
    original = engine.events.schedule

    def tracking_schedule(time, callback, kind="event"):
        event = original(time, callback, kind=kind)
        scheduled.append(event)
        return event

    engine.events.schedule = tracking_schedule
    result = engine.run([[j.copy() for j in s] for s in streams])
    return result, runtime, scheduled


def fingerprint(result, runtime):
    return [
        (
            site.metrics.n_arrived,
            site.metrics.n_completed,
            site.metrics.n_failed,
            site.metrics.n_retries,
            site.metrics.acc_latency,
            site.metrics.total_energy_kwh(),
        )
        for site in result.sites
    ] + [
        result.final_time,
        runtime.total_crashes,
        runtime.total_jobs_killed,
        runtime.total_stragglers,
        runtime.rerouted,
    ]


@settings(max_examples=25, deadline=None)
@given(stream=job_streams(), spec=fault_specs(), seed=st.integers(0, 2**16))
def test_cluster_conserves_jobs_under_chaos(stream, spec, seed):
    result, runtime, _ = run_faulted([stream], spec, seed)
    m = result.sites[0].metrics
    assert m.n_completed + m.n_failed == len(stream)
    assert m.n_failed <= m.n_retries + len(stream)
    assert 0.0 <= m.goodput <= 1.0
    assert 0.0 <= runtime.fleet_availability(result.final_time) <= 1.0


@settings(max_examples=15, deadline=None)
@given(
    streams=st.tuples(job_streams(max_jobs=10), job_streams(max_jobs=10)),
    spec=fault_specs(),
    seed=st.integers(0, 2**16),
)
def test_federation_conserves_jobs_under_chaos(streams, spec, seed):
    a, b = streams
    b = [Job(1000 + j.job_id, j.arrival_time, j.duration, j.resources) for j in b]
    result, runtime, _ = run_faulted([a, b], spec, seed)
    completed = sum(site.metrics.n_completed for site in result.sites)
    failed = sum(site.metrics.n_failed for site in result.sites)
    assert completed + failed == len(a) + len(b)


@settings(max_examples=15, deadline=None)
@given(stream=job_streams(), spec=fault_specs(), seed=st.integers(0, 2**16))
def test_same_seed_chaos_is_deterministic(stream, spec, seed):
    first = run_faulted([stream], spec, seed)
    second = run_faulted([stream], spec, seed)
    assert fingerprint(first[0], first[1]) == fingerprint(second[0], second[1])


@settings(max_examples=15, deadline=None)
@given(stream=job_streams(), spec=fault_specs(), seed=st.integers(0, 2**16))
def test_event_clock_never_runs_backwards(stream, spec, seed):
    result, _, scheduled = run_faulted([stream], spec, seed)
    # Every event (crash, recovery, retry, finish) lands at a
    # non-negative time, and the run's final clock bounds every event
    # that *executed*. Cancelled tombstones are exempt: a crash cancels
    # the victim's scheduled finish, and when the retried job completes
    # earlier than the original would have, the dead finish time is
    # legitimately never reached.
    assert all(e.time >= 0.0 for e in scheduled)
    executed = [e.time for e in scheduled if not e.cancelled]
    assert result.final_time >= max(executed, default=0.0)
