"""Engine-side fault runtime: identity, crashes, retries, containment."""

import pytest

from repro.core.baselines import AlwaysOnPolicy, RoundRobinBroker
from repro.faults.inject import install_faults
from repro.faults.plan import CrashEvent, SiteFaultPlan
from repro.faults.spec import FaultSpec
from repro.sim.federation import build_federation
from repro.sim.interfaces import Broker
from repro.sim.job import Job


def jobs_burst(n, spacing=10.0, duration=50.0, cpu=0.3, offset=0.0, start_id=0):
    return [
        Job(start_id + i, offset + i * spacing, duration, (cpu, 0.1, 0.1))
        for i in range(n)
    ]


def one_site(num_servers=2, broker=None):
    return build_federation(
        [
            dict(
                name="a",
                num_servers=num_servers,
                broker=broker or RoundRobinBroker(),
                policies=AlwaysOnPolicy(),
                initially_on=True,
            )
        ]
    )


def plan(spec=None, crashes=(), seed=0):
    return SiteFaultPlan(spec=spec or FaultSpec(), seed=seed, crashes=crashes)


def site_stats(result):
    m = result.sites[0].metrics
    return dict(
        completed=m.n_completed,
        failed=m.n_failed,
        retries=m.n_retries,
        acc_latency=m.acc_latency,
        energy=m.total_energy_kwh(),
    )


class FaultyBroker(Broker):
    """Raises on every decision — the degraded path must contain it."""

    def select_server(self, job, cluster, now):
        raise RuntimeError("diverged learner")


class PickServer(Broker):
    """Always picks one fixed server index."""

    def __init__(self, target):
        self.target = target

    def select_server(self, job, cluster, now):
        return self.target


class TestZeroFaultIdentity:
    def test_inert_runtime_is_bit_identical(self):
        """The tentpole invariant: null plans change nothing at all."""
        stream = jobs_burst(40, spacing=7.0, duration=120.0, cpu=0.45)
        bare = one_site()
        bare_result = bare.run([list(stream)])

        faulted = one_site()
        runtime = install_faults(faulted, [plan()])
        faulted_result = faulted.run([jobs_burst(40, 7.0, 120.0, 0.45)])

        assert site_stats(faulted_result) == site_stats(bare_result)
        assert faulted_result.final_time == bare_result.final_time
        assert runtime.broker_fallbacks == 0
        assert runtime.fleet_availability(faulted_result.final_time) == 1.0

    def test_none_plan_is_inert_too(self):
        stream = jobs_burst(20)
        bare_result = one_site().run([list(stream)])
        faulted = one_site()
        install_faults(faulted, [None])
        assert site_stats(faulted.run([jobs_burst(20)])) == site_stats(
            bare_result
        )


class TestCrashes:
    def test_crash_kills_running_job_and_it_retries(self):
        engine = one_site(num_servers=1)
        runtime = install_faults(
            engine,
            [
                plan(
                    FaultSpec(max_retries=3, retry_backoff_s=10.0),
                    crashes=(CrashEvent(time=25.0, server_id=0, recovery=30.0),),
                )
            ],
        )
        result = engine.run([[Job(0, 0.0, 50.0, (0.3, 0.1, 0.1))]])
        m = result.sites[0].metrics
        assert runtime.total_crashes == 1
        assert runtime.total_jobs_killed == 1
        assert m.n_retries == 1
        assert m.n_completed == 1  # killed at 25, retried, finished later
        assert m.n_failed == 0
        # Down 30 s of a > 85 s run on one server.
        assert runtime.fleet_availability(result.final_time) < 1.0

    def test_crash_drains_queued_jobs_through_retry_path(self):
        # One server, two jobs: the second queues behind the first and
        # the crash at t=25 must re-enqueue both (1 running + 1 queued).
        engine = one_site(num_servers=1)
        runtime = install_faults(
            engine,
            [
                plan(
                    FaultSpec(max_retries=3, retry_backoff_s=5.0),
                    crashes=(CrashEvent(25.0, 0, 20.0),),
                )
            ],
        )
        result = engine.run(
            [[Job(0, 0.0, 50.0, (0.6, 0.1, 0.1)), Job(1, 1.0, 50.0, (0.6, 0.1, 0.1))]]
        )
        m = result.sites[0].metrics
        assert m.n_completed == 2
        assert m.n_retries == 2
        assert runtime.total_jobs_killed == 1  # only job 0 was running

    def test_overlapping_crashes_collapse(self):
        engine = one_site(num_servers=1)
        runtime = install_faults(
            engine,
            [
                plan(
                    FaultSpec(retry_backoff_s=5.0),
                    crashes=(CrashEvent(20.0, 0, 40.0), CrashEvent(30.0, 0, 40.0)),
                )
            ],
        )
        result = engine.run([[Job(0, 0.0, 100.0, (0.3, 0.1, 0.1))]])
        assert runtime.total_crashes == 1  # second crash hit a down server
        assert result.sites[0].metrics.n_completed == 1


class TestRetriesAndFailures:
    def test_retry_budget_exhaustion_fails_the_job(self):
        engine = one_site(num_servers=1)
        install_faults(
            engine,
            [plan(FaultSpec(job_failure_prob=1.0, max_retries=1, retry_backoff_s=5.0))],
        )
        result = engine.run([[Job(0, 0.0, 10.0, (0.3, 0.1, 0.1))]])
        m = result.sites[0].metrics
        assert m.n_completed == 0
        assert m.n_retries == 1
        assert m.n_failed == 1
        assert m.goodput == 0.0

    def test_goodput_mixes_completions_and_failures(self):
        engine = one_site(num_servers=2)
        install_faults(
            engine,
            [plan(FaultSpec(job_failure_prob=0.5, max_retries=0), seed=11)],
        )
        result = engine.run([jobs_burst(30)])
        m = result.sites[0].metrics
        assert m.n_completed + m.n_failed == 30
        assert 0 < m.n_failed < 30  # p=0.5, max_retries=0: both happen
        assert m.goodput == pytest.approx(
            m.n_completed / (m.n_completed + m.n_failed)
        )

    def test_straggler_stretches_service_time(self):
        baseline = one_site(num_servers=1).run([[Job(0, 0.0, 40.0, (0.3, 0.1, 0.1))]])
        engine = one_site(num_servers=1)
        runtime = install_faults(
            engine,
            [plan(FaultSpec(straggler_prob=1.0, straggler_factor=3.0))],
        )
        result = engine.run([[Job(0, 0.0, 40.0, (0.3, 0.1, 0.1))]])
        assert runtime.total_stragglers == 1
        assert result.sites[0].metrics.acc_latency == pytest.approx(
            3.0 * baseline.sites[0].metrics.acc_latency
        )


class TestDegradedRouting:
    def test_broker_exception_contained_by_fallback(self):
        engine = one_site(num_servers=2, broker=FaultyBroker())
        runtime = install_faults(engine, [plan(FaultSpec(job_failure_prob=0.0))])
        result = engine.run([jobs_burst(10)])
        assert result.sites[0].metrics.n_completed == 10
        assert runtime.broker_fallbacks == 10

    def test_out_of_range_broker_decision_contained(self):
        engine = one_site(num_servers=2, broker=PickServer(99))
        runtime = install_faults(engine, [plan()])
        result = engine.run([jobs_burst(6)])
        assert result.sites[0].metrics.n_completed == 6
        assert runtime.broker_fallbacks == 6

    def test_arrivals_route_around_a_down_server(self):
        # The broker insists on server 0, which is down for the whole
        # arrival window; every job must be rerouted to server 1.
        engine = one_site(num_servers=2, broker=PickServer(0))
        runtime = install_faults(
            engine,
            [
                plan(
                    FaultSpec(retry_backoff_s=5.0),
                    crashes=(CrashEvent(0.0, 0, 500.0),),
                )
            ],
        )
        result = engine.run([jobs_burst(8, spacing=10.0, offset=1.0)])
        assert result.sites[0].metrics.n_completed == 8
        assert runtime.rerouted == 8
        servers = result.sites[0].cluster.servers
        assert servers[0].jobs_completed == 0
        assert servers[1].jobs_completed == 8

    def test_dark_site_reroutes_to_live_site(self):
        engine = build_federation(
            [
                dict(
                    name="a",
                    num_servers=1,
                    broker=RoundRobinBroker(),
                    policies=AlwaysOnPolicy(),
                    initially_on=True,
                ),
                dict(
                    name="b",
                    num_servers=1,
                    broker=RoundRobinBroker(),
                    policies=AlwaysOnPolicy(),
                    initially_on=True,
                ),
            ]
        )
        runtime = install_faults(
            engine,
            [
                plan(
                    FaultSpec(retry_backoff_s=5.0),
                    crashes=(CrashEvent(0.0, 0, 1000.0),),
                ),
                None,
            ],
        )
        result = engine.run([jobs_burst(6, offset=1.0), []])
        assert result.n_completed == 6
        assert runtime.rerouted >= 6
        # All the work landed on site b; site a stayed dark.
        assert result.sites[1].metrics.n_completed == 6
        assert runtime.site_availability(0, result.final_time) < 1.0
        assert runtime.site_availability(1, result.final_time) == 1.0

    def test_all_sites_dark_still_terminates(self):
        # Both servers down at t=0; arrivals queue at the fallback and
        # run once recovery restores capacity — nothing is lost.
        engine = one_site(num_servers=1)
        result_engine = install_faults(
            engine,
            [
                plan(
                    FaultSpec(retry_backoff_s=5.0),
                    crashes=(CrashEvent(0.0, 0, 200.0),),
                )
            ],
        )
        result = engine.run([jobs_burst(4, offset=1.0)])
        assert result.sites[0].metrics.n_completed == 4
        assert result.final_time > 200.0
        assert result_engine.total_crashes == 1
