"""Regression test: trace CSVs must round-trip numpy-scalar resources.

Under NumPy >= 2, ``repr(np.float64(x))`` is ``"np.float64(x)"`` — not
parseable. Jobs built from numpy arrays (e.g. the synthetic generator)
must still serialize to plain numeric text.
"""

import numpy as np

from repro.sim.job import Job
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace
from repro.workload.trace import read_trace_csv, write_trace_csv


def test_numpy_scalar_fields_roundtrip(tmp_path):
    job = Job(
        0,
        float(np.float64(1.5)),
        200.0,
        (np.float64(0.25), np.float64(0.5), np.float64(0.125)),
    )
    path = tmp_path / "t.csv"
    write_trace_csv([job], path)
    text = path.read_text()
    assert "np.float64" not in text
    back = read_trace_csv(path)
    assert back[0].resources == (0.25, 0.5, 0.125)


def test_synthetic_trace_resources_are_plain_floats():
    jobs = generate_trace(SyntheticTraceConfig(n_jobs=5, horizon=100.0), seed=0)
    for job in jobs:
        assert all(type(r) is float for r in job.resources)
        assert type(job.arrival_time) is float


def test_synthetic_trace_roundtrips(tmp_path):
    jobs = generate_trace(SyntheticTraceConfig(n_jobs=20, horizon=100.0), seed=1)
    path = tmp_path / "syn.csv"
    write_trace_csv(jobs, path)
    assert read_trace_csv(path) == jobs
