"""Tests for repro.workload.segments."""

import pytest

from repro.sim.job import Job
from repro.workload.segments import rebase, split_segments


def mk_jobs(arrivals):
    return [Job(i, t, 10.0, (0.1, 0.1, 0.1)) for i, t in enumerate(arrivals)]


class TestRebase:
    def test_shifts_to_zero(self):
        jobs = mk_jobs([100.0, 150.0, 160.0])
        shifted = rebase(jobs)
        assert [j.arrival_time for j in shifted] == [0.0, 50.0, 60.0]

    def test_originals_untouched(self):
        jobs = mk_jobs([100.0, 150.0])
        rebase(jobs)
        assert jobs[0].arrival_time == 100.0

    def test_renumbering(self):
        jobs = mk_jobs([150.0, 100.0])
        shifted = rebase(jobs)
        assert [j.job_id for j in shifted] == [0, 1]
        assert shifted[0].arrival_time == 0.0

    def test_keep_ids(self):
        jobs = mk_jobs([150.0, 100.0])
        shifted = rebase(jobs, renumber=False)
        assert [j.job_id for j in shifted] == [1, 0]

    def test_empty(self):
        assert rebase([]) == []


class TestSplit:
    def test_segment_sizes(self):
        segments = split_segments(mk_jobs(range(10)), segment_size=3)
        assert [len(s) for s in segments] == [3, 3, 3, 1]

    def test_drop_partial(self):
        segments = split_segments(mk_jobs(range(10)), segment_size=3, drop_partial=True)
        assert [len(s) for s in segments] == [3, 3, 3]

    def test_segments_rebased(self):
        segments = split_segments(mk_jobs([0.0, 10.0, 20.0, 30.0]), segment_size=2)
        assert segments[1][0].arrival_time == 0.0
        assert segments[1][1].arrival_time == 10.0

    def test_sorts_before_splitting(self):
        segments = split_segments(mk_jobs([30.0, 0.0, 20.0, 10.0]), segment_size=2)
        assert [j.arrival_time for j in segments[0]] == [0.0, 10.0]

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            split_segments(mk_jobs([0.0]), segment_size=0)

    def test_exact_multiple(self):
        segments = split_segments(mk_jobs(range(6)), segment_size=3)
        assert len(segments) == 2
