"""Tests for repro.workload.stats."""

import pytest

from repro.sim.job import Job
from repro.workload.stats import characterize


def mk_job(i, arrival, duration=100.0, cpu=0.5):
    return Job(i, arrival, duration, (cpu, 0.2, 0.1))


class TestCharacterize:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            characterize([])

    def test_counts_and_span(self):
        stats = characterize([mk_job(0, 0.0), mk_job(1, 50.0), mk_job(2, 100.0)])
        assert stats.n_jobs == 3
        assert stats.span == pytest.approx(100.0)
        assert stats.arrival_rate == pytest.approx(0.03)

    def test_interarrival_stats(self):
        stats = characterize([mk_job(0, 0.0), mk_job(1, 10.0), mk_job(2, 30.0)])
        assert stats.interarrival_mean == pytest.approx(15.0)
        assert stats.interarrival_cv == pytest.approx(5.0 / 15.0)

    def test_duration_percentiles(self):
        jobs = [mk_job(i, float(i), duration=60.0 + i) for i in range(100)]
        stats = characterize(jobs)
        assert stats.duration_min == 60.0
        assert stats.duration_max == 159.0
        assert 100.0 <= stats.duration_p50 <= 120.0

    def test_mean_demand(self):
        stats = characterize([mk_job(0, 0.0, cpu=0.2), mk_job(1, 1.0, cpu=0.8)])
        assert stats.mean_demand[0] == pytest.approx(0.5)

    def test_offered_load(self):
        # 1 job/s  x  100 s  x  0.5 cpu  = 50 server-equivalents.
        jobs = [mk_job(i, float(i)) for i in range(101)]
        stats = characterize(jobs)
        assert stats.offered_load == pytest.approx(1.0 * 100.0 * 0.5, rel=0.02)

    def test_single_job(self):
        stats = characterize([mk_job(0, 5.0)])
        assert stats.n_jobs == 1
        assert stats.interarrival_mean == 0.0

    def test_summary_is_readable(self):
        text = characterize([mk_job(0, 0.0), mk_job(1, 60.0)]).summary()
        assert "jobs:" in text and "offered load" in text
        assert "cpu=0.500" in text
