"""Tests for repro.workload.trace."""

import pytest

from repro.sim.job import Job
from repro.workload.trace import (
    jobs_from_arrays,
    read_google_task_events,
    read_trace_csv,
    write_trace_csv,
)


@pytest.fixture
def sample_jobs():
    return [
        Job(0, 0.0, 60.0, (0.5, 0.2, 0.1)),
        Job(1, 12.5, 3600.0, (0.25, 0.125, 0.0625)),
        Job(2, 100.0, 7200.0, (1.0, 1.0, 1.0)),
    ]


class TestCsvRoundtrip:
    def test_roundtrip_exact(self, sample_jobs, tmp_path):
        path = tmp_path / "trace.csv"
        count = write_trace_csv(sample_jobs, path)
        assert count == 3
        back = read_trace_csv(path)
        assert back == sample_jobs
        # repr() serialization keeps floats bit-exact.
        assert back[1].arrival_time == 12.5

    def test_bad_header_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            read_trace_csv(path)

    def test_bad_row_raises(self, tmp_path, sample_jobs):
        path = tmp_path / "trace.csv"
        write_trace_csv(sample_jobs, path)
        with path.open("a") as fh:
            fh.write("1,2\n")
        with pytest.raises(ValueError, match="fields"):
            read_trace_csv(path)

    def test_more_than_three_dims_raises(self, tmp_path):
        # Regression: res[:3] used to silently truncate the 4th dimension,
        # so a write/read round-trip lost data instead of failing loudly.
        jobs = [Job(0, 0.0, 60.0, (0.5, 0.2, 0.1, 0.3))]
        with pytest.raises(ValueError, match="resource dimensions"):
            write_trace_csv(jobs, tmp_path / "t.csv")

    def test_nan_field_raises(self, tmp_path):
        job = Job(0, 0.0, 60.0, (0.5, 0.2, 0.1))
        job.arrival_time = float("nan")  # bypasses __post_init__ validation
        with pytest.raises(ValueError, match="NaN"):
            write_trace_csv([job], tmp_path / "t.csv")

    def test_nan_resource_raises(self, tmp_path):
        job = Job(0, 0.0, 60.0, (0.5, 0.2, 0.1))
        job.resources = (0.5, float("nan"), 0.1)
        with pytest.raises(ValueError, match="NaN"):
            write_trace_csv([job], tmp_path / "t.csv")

    def test_fewer_dims_still_padded(self, tmp_path):
        # <= 3 dims keep the documented zero-padding behaviour.
        path = tmp_path / "t.csv"
        assert write_trace_csv([Job(0, 0.0, 60.0, (0.5, 0.5, 0.5))], path) == 1


class TestJobsFromArrays:
    def test_basic(self):
        jobs = jobs_from_arrays(
            [0.0, 5.0], [10.0, 20.0], [(0.1, 0.2, 0.3), (0.4, 0.5, 0.6)]
        )
        assert [j.job_id for j in jobs] == [0, 1]
        assert jobs[1].resources == (0.4, 0.5, 0.6)

    def test_sorts_by_arrival(self):
        jobs = jobs_from_arrays(
            [5.0, 0.0], [10.0, 20.0], [(0.1, 0.1, 0.1), (0.2, 0.2, 0.2)]
        )
        assert jobs[0].arrival_time == 0.0
        assert jobs[0].resources == (0.2, 0.2, 0.2)
        assert [j.job_id for j in jobs] == [0, 1]

    def test_start_id(self):
        jobs = jobs_from_arrays([0.0], [1.0], [(0.1, 0.1, 0.1)], start_id=100)
        assert jobs[0].job_id == 100

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            jobs_from_arrays([0.0, 1.0], [1.0], [(0.1, 0.1, 0.1)])


def google_row(time_us, job_id, event, cpu, mem, disk):
    return (
        f"{time_us},,{job_id},0,machine,{event},user,class,prio,{cpu},{mem},{disk},0"
    )


class TestGoogleTaskEvents:
    def test_pairs_submit_and_finish(self, tmp_path):
        path = tmp_path / "part-00000.csv"
        rows = [
            google_row(1_000_000, 7, 0, 0.5, 0.25, 0.1),  # submit t=1s
            google_row(121_000_000, 7, 4, 0.5, 0.25, 0.1),  # finish t=121s
            google_row(2_000_000, 8, 0, 0.3, 0.1, 0.1),  # submit t=2s
            google_row(1_000_000_000, 8, 4, 0.3, 0.1, 0.1),  # finish t=1000s
        ]
        path.write_text("\n".join(rows) + "\n")
        jobs = read_google_task_events([path])
        assert len(jobs) == 2
        assert jobs[0].arrival_time == 0.0  # re-based
        assert jobs[0].duration == pytest.approx(120.0)
        assert jobs[0].resources == (0.5, 0.25, 0.1)

    def test_duration_filter(self, tmp_path):
        path = tmp_path / "p.csv"
        rows = [
            google_row(0, 1, 0, 0.5, 0.2, 0.1),
            google_row(5_000_000, 1, 4, 0.5, 0.2, 0.1),  # 5 s: too short
            google_row(0, 2, 0, 0.5, 0.2, 0.1),
            google_row(10_000_000_000, 2, 4, 0.5, 0.2, 0.1),  # 10000 s: too long
        ]
        path.write_text("\n".join(rows) + "\n")
        assert read_google_task_events([path]) == []

    def test_unfinished_jobs_skipped(self, tmp_path):
        path = tmp_path / "p.csv"
        path.write_text(google_row(0, 1, 0, 0.5, 0.2, 0.1) + "\n")
        assert read_google_task_events([path]) == []

    def test_malformed_rows_skipped(self, tmp_path):
        path = tmp_path / "p.csv"
        rows = [
            "not,a,valid,row",
            google_row(0, 1, 0, 0.5, 0.2, 0.1),
            google_row(120_000_000, 1, 4, 0.5, 0.2, 0.1),
        ]
        path.write_text("\n".join(rows) + "\n")
        assert len(read_google_task_events([path])) == 1

    def test_invalid_resources_skipped(self, tmp_path):
        path = tmp_path / "p.csv"
        rows = [
            google_row(0, 1, 0, 0.0, 0.2, 0.1),  # zero cpu request
            google_row(120_000_000, 1, 4, 0.0, 0.2, 0.1),
        ]
        path.write_text("\n".join(rows) + "\n")
        assert read_google_task_events([path]) == []

    def test_sorted_output(self, tmp_path):
        path = tmp_path / "p.csv"
        rows = [
            google_row(50_000_000, 2, 0, 0.3, 0.2, 0.1),
            google_row(200_000_000, 2, 4, 0.3, 0.2, 0.1),
            google_row(1_000_000, 1, 0, 0.5, 0.2, 0.1),
            google_row(121_000_000, 1, 4, 0.5, 0.2, 0.1),
        ]
        path.write_text("\n".join(rows) + "\n")
        jobs = read_google_task_events([path])
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)


class TestGoogleIncarnations:
    """Job-ID reuse (RESUBMIT cycles) must pair per incarnation.

    Regression: the reader used to pair the *first* SUBMIT with the
    *first* FINISH per job ID, so ID reuse fabricated one wrong-duration
    job and dropped the rest.
    """

    def test_id_reuse_yields_one_job_per_incarnation(self, tmp_path):
        path = tmp_path / "p.csv"
        rows = [
            google_row(0, 5, 0, 0.5, 0.2, 0.1),  # incarnation A: submit t=0
            google_row(100_000_000, 5, 4, 0.5, 0.2, 0.1),  # finish t=100
            google_row(1_000_000_000, 5, 0, 0.3, 0.3, 0.3),  # B: submit t=1000
            google_row(1_200_000_000, 5, 4, 0.3, 0.3, 0.3),  # finish t=1200
        ]
        path.write_text("\n".join(rows) + "\n")
        jobs = read_google_task_events([path])
        expected = [pytest.approx(100.0), pytest.approx(200.0)]
        assert [j.duration for j in jobs] == expected
        assert jobs[0].resources == (0.5, 0.2, 0.1)
        assert jobs[1].resources == (0.3, 0.3, 0.3)

    def test_reuse_with_out_of_order_rows(self, tmp_path):
        # The second incarnation's rows appear *first* in the file; pairing
        # must follow timestamps, not file order.
        path = tmp_path / "p.csv"
        rows = [
            google_row(1_000_000_000, 5, 0, 0.3, 0.3, 0.3),  # B submit t=1000
            google_row(1_200_000_000, 5, 4, 0.3, 0.3, 0.3),  # B finish t=1200
            google_row(0, 5, 0, 0.5, 0.2, 0.1),  # A submit t=0
            google_row(100_000_000, 5, 4, 0.5, 0.2, 0.1),  # A finish t=100
        ]
        path.write_text("\n".join(rows) + "\n")
        jobs = read_google_task_events([path])
        expected = [pytest.approx(100.0), pytest.approx(200.0)]
        assert [j.duration for j in jobs] == expected

    def test_filtered_incarnation_does_not_consume_the_next(self, tmp_path):
        # Incarnation A is too short to keep, but its FINISH must still
        # close it so incarnation B pairs with its own SUBMIT.
        path = tmp_path / "p.csv"
        rows = [
            google_row(0, 9, 0, 0.5, 0.2, 0.1),  # A submit t=0
            google_row(5_000_000, 9, 4, 0.5, 0.2, 0.1),  # A finish t=5 (< 60 s)
            google_row(100_000_000, 9, 0, 0.5, 0.2, 0.1),  # B submit t=100
            google_row(400_000_000, 9, 4, 0.5, 0.2, 0.1),  # B finish t=400
        ]
        path.write_text("\n".join(rows) + "\n")
        jobs = read_google_task_events([path])
        assert [j.duration for j in jobs] == [pytest.approx(300.0)]

    def test_finish_without_submit_ignored(self, tmp_path):
        path = tmp_path / "p.csv"
        rows = [
            google_row(0, 3, 4, 0.5, 0.2, 0.1),  # orphan finish (window cut)
            google_row(10_000_000, 3, 0, 0.5, 0.2, 0.1),  # submit t=10
            google_row(130_000_000, 3, 4, 0.5, 0.2, 0.1),  # finish t=130
        ]
        path.write_text("\n".join(rows) + "\n")
        jobs = read_google_task_events([path])
        assert [j.duration for j in jobs] == [pytest.approx(120.0)]

    def test_duplicate_submit_keeps_first(self, tmp_path):
        path = tmp_path / "p.csv"
        rows = [
            google_row(0, 4, 0, 0.5, 0.2, 0.1),
            google_row(20_000_000, 4, 0, 0.9, 0.9, 0.9),  # duplicate submit
            google_row(120_000_000, 4, 4, 0.5, 0.2, 0.1),
        ]
        path.write_text("\n".join(rows) + "\n")
        jobs = read_google_task_events([path])
        assert len(jobs) == 1
        assert jobs[0].duration == pytest.approx(120.0)
        assert jobs[0].resources == (0.5, 0.2, 0.1)

    def test_reuse_across_files(self, tmp_path):
        # Incarnations split across part files still pair by timestamp.
        a, b = tmp_path / "part-0.csv", tmp_path / "part-1.csv"
        a.write_text(
            "\n".join(
                [
                    google_row(0, 6, 0, 0.5, 0.2, 0.1),
                    google_row(90_000_000, 6, 4, 0.5, 0.2, 0.1),
                ]
            )
            + "\n"
        )
        b.write_text(
            "\n".join(
                [
                    google_row(500_000_000, 6, 0, 0.4, 0.2, 0.1),
                    google_row(700_000_000, 6, 4, 0.4, 0.2, 0.1),
                ]
            )
            + "\n"
        )
        jobs = read_google_task_events([a, b])
        assert [j.duration for j in jobs] == [pytest.approx(90.0), pytest.approx(200.0)]


class TestStreamingMerge:
    """The heapq.merge ingestion path must reproduce buffer-and-sort."""

    def make_jobs(self, rng, n, t0=0.0, span=3600.0, id_base=1000):
        rows = []
        for i in range(n):
            t = t0 + float(rng.uniform(0.0, span))
            d = float(rng.uniform(90.0, 2000.0))
            job_id = id_base + i
            ts = int(t * 1e6)
            rows.append((ts, google_row(ts, job_id, 0, 0.4, 0.2, 0.1)))
            t1 = int((t + d) * 1e6)
            rows.append((t1, google_row(t1, job_id, 4, 0.4, 0.2, 0.1)))
        return rows

    def test_split_part_files_match_single_file(self, tmp_path):
        import numpy as np

        rng = np.random.default_rng(7)
        rows = sorted(
            self.make_jobs(rng, 30) + self.make_jobs(rng, 30, t0=1800.0),
            key=lambda r: r[0],
        )
        whole = tmp_path / "all.csv"
        whole.write_text("\n".join(text for _, text in rows) + "\n")
        # Time-partitioned part files (each sorted — the streaming path).
        mid = len(rows) // 2
        a, b = tmp_path / "part-0.csv", tmp_path / "part-1.csv"
        a.write_text("\n".join(text for _, text in rows[:mid]) + "\n")
        b.write_text("\n".join(text for _, text in rows[mid:]) + "\n")
        assert read_google_task_events([a, b]) == read_google_task_events([whole])

    def test_out_of_order_rows_within_a_file_still_handled(self, tmp_path):
        # Regression: per-file sortedness is NOT assumed — a shuffled
        # file must parse identically to its sorted twin (the pre-merge
        # buffer-and-sort behavior).
        import numpy as np

        rng = np.random.default_rng(11)
        rows = self.make_jobs(rng, 25)
        shuffled = list(rows)
        rng.shuffle(shuffled)
        sorted_path = tmp_path / "sorted.csv"
        shuffled_path = tmp_path / "shuffled.csv"
        sorted_path.write_text(
            "\n".join(text for _, text in sorted(rows, key=lambda r: r[0])) + "\n"
        )
        shuffled_path.write_text("\n".join(text for _, text in shuffled) + "\n")
        assert read_google_task_events([shuffled_path]) == read_google_task_events(
            [sorted_path]
        )

    def test_sorted_files_take_the_streaming_path(self, tmp_path):
        from repro.workload.trace import _task_file_is_sorted

        import numpy as np

        rng = np.random.default_rng(3)
        rows = self.make_jobs(rng, 10)
        sorted_path = tmp_path / "sorted.csv"
        sorted_path.write_text(
            "\n".join(text for _, text in sorted(rows, key=lambda r: r[0])) + "\n"
        )
        assert _task_file_is_sorted(sorted_path)
        # The committed fixture deliberately carries an out-of-order
        # region, so it exercises the buffered fallback.
        assert not _task_file_is_sorted(
            __import__("pathlib").Path("tests/fixtures/google_task_events_small.csv")
        )

    def test_mixed_sorted_and_unsorted_files_merge_in_time_order(self, tmp_path):
        import numpy as np

        rng = np.random.default_rng(13)
        sorted_rows = sorted(self.make_jobs(rng, 15), key=lambda r: r[0])
        messy_rows = self.make_jobs(rng, 15, t0=500.0, id_base=5000)
        rng.shuffle(messy_rows)
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        a.write_text("\n".join(text for _, text in sorted_rows) + "\n")
        b.write_text("\n".join(text for _, text in messy_rows) + "\n")
        jobs = read_google_task_events([a, b])
        assert len(jobs) == 30
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)
