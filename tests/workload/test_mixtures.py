"""Multi-class mixes and flash-crowd injection."""

import numpy as np
import pytest

from repro.workload.mixtures import flash_crowd_jobs, generate_mixture, merge_traces
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace


class TestMergeTraces:
    def test_sorted_and_renumbered(self):
        a = generate_trace(SyntheticTraceConfig(n_jobs=20, horizon=1000.0), seed=0)
        b = generate_trace(SyntheticTraceConfig(n_jobs=30, horizon=1000.0), seed=1)
        merged = merge_traces(a, b)
        assert len(merged) == 50
        assert [j.job_id for j in merged] == list(range(50))
        arrivals = [j.arrival_time for j in merged]
        assert arrivals == sorted(arrivals)

    def test_inputs_untouched(self):
        a = generate_trace(SyntheticTraceConfig(n_jobs=5, horizon=100.0), seed=0)
        ids = [j.job_id for j in a]
        merge_traces(a, a)
        assert [j.job_id for j in a] == ids


class TestFlashCrowd:
    def test_confined_to_window(self):
        config = SyntheticTraceConfig(n_jobs=1000, horizon=10_000.0)
        rng = np.random.default_rng(0)
        extra = flash_crowd_jobs(config, start=2000.0, duration=500.0,
                                 rate_multiplier=5.0, rng=rng)
        assert extra, "a 5x crowd over 500 s at 0.1 jobs/s must emit jobs"
        assert all(2000.0 <= j.arrival_time < 2500.0 for j in extra)
        # ~ (5-1) * 0.1 jobs/s * 500 s = 200 expected
        assert 120 < len(extra) < 300

    def test_rejects_non_amplifying_multiplier(self):
        config = SyntheticTraceConfig(n_jobs=10, horizon=100.0)
        with pytest.raises(ValueError, match="rate_multiplier"):
            flash_crowd_jobs(config, 0.0, 10.0, 1.0, np.random.default_rng(0))


class TestGenerateMixture:
    def test_weighted_class_counts(self):
        light = SyntheticTraceConfig(duration_median=100.0)
        heavy = SyntheticTraceConfig(duration_median=2000.0)
        jobs = generate_mixture(
            [(light, 0.75), (heavy, 0.25)], n_jobs=200, horizon=2000.0, seed=3
        )
        assert len(jobs) == 200
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_deterministic_per_seed(self):
        config = SyntheticTraceConfig()
        kwargs = dict(n_jobs=50, horizon=500.0,
                      flash_crowds=[(0.1, 0.2, 3.0)])
        a = generate_mixture([(config, 1.0)], seed=9, **kwargs)
        b = generate_mixture([(config, 1.0)], seed=9, **kwargs)
        c = generate_mixture([(config, 1.0)], seed=10, **kwargs)
        assert a == b
        assert a != c

    def test_adding_a_class_keeps_first_class_stream(self):
        """Child seed spawning isolates classes from one another."""
        base = SyntheticTraceConfig(duration_median=100.0)
        solo = generate_mixture([(base, 1.0)], n_jobs=40, horizon=400.0, seed=5)
        duo = generate_mixture(
            [(base, 1.0), (SyntheticTraceConfig(duration_median=900.0), 1.0)],
            n_jobs=80,
            horizon=400.0,
            seed=5,
        )
        solo_durations = sorted(j.duration for j in solo)
        duo_durations = sorted(j.duration for j in duo)
        # Every job of the solo run reappears untouched in the duo run.
        for d in solo_durations:
            assert any(abs(d - x) < 1e-12 for x in duo_durations)

    def test_needs_a_class(self):
        with pytest.raises(ValueError, match="job class"):
            generate_mixture([], n_jobs=10, horizon=100.0)
