"""Multi-class mixes and flash-crowd injection."""

import numpy as np
import pytest

from repro.workload.mixtures import flash_crowd_jobs, generate_mixture, merge_traces
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace


class TestMergeTraces:
    def test_sorted_and_renumbered(self):
        a = generate_trace(SyntheticTraceConfig(n_jobs=20, horizon=1000.0), seed=0)
        b = generate_trace(SyntheticTraceConfig(n_jobs=30, horizon=1000.0), seed=1)
        merged = merge_traces(a, b)
        assert len(merged) == 50
        assert [j.job_id for j in merged] == list(range(50))
        arrivals = [j.arrival_time for j in merged]
        assert arrivals == sorted(arrivals)

    def test_inputs_untouched(self):
        a = generate_trace(SyntheticTraceConfig(n_jobs=5, horizon=100.0), seed=0)
        ids = [j.job_id for j in a]
        merge_traces(a, a)
        assert [j.job_id for j in a] == ids


class TestFlashCrowd:
    def test_confined_to_window(self):
        config = SyntheticTraceConfig(n_jobs=1000, horizon=10_000.0)
        rng = np.random.default_rng(0)
        extra = flash_crowd_jobs(config, start=2000.0, duration=500.0,
                                 rate_multiplier=5.0, rng=rng)
        assert extra, "a 5x crowd over 500 s at 0.1 jobs/s must emit jobs"
        assert all(2000.0 <= j.arrival_time < 2500.0 for j in extra)
        # ~ (5-1) * 0.1 jobs/s * 500 s = 200 expected
        assert 120 < len(extra) < 300

    def test_rejects_non_amplifying_multiplier(self):
        config = SyntheticTraceConfig(n_jobs=10, horizon=100.0)
        with pytest.raises(ValueError, match="rate_multiplier"):
            flash_crowd_jobs(config, 0.0, 10.0, 1.0, np.random.default_rng(0))


class TestGenerateMixture:
    def test_weighted_class_counts(self):
        light = SyntheticTraceConfig(duration_median=100.0)
        heavy = SyntheticTraceConfig(duration_median=2000.0)
        jobs = generate_mixture(
            [(light, 0.75), (heavy, 0.25)], n_jobs=200, horizon=2000.0, seed=3
        )
        assert len(jobs) == 200
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_deterministic_per_seed(self):
        config = SyntheticTraceConfig()
        kwargs = dict(n_jobs=50, horizon=500.0,
                      flash_crowds=[(0.1, 0.2, 3.0)])
        a = generate_mixture([(config, 1.0)], seed=9, **kwargs)
        b = generate_mixture([(config, 1.0)], seed=9, **kwargs)
        c = generate_mixture([(config, 1.0)], seed=10, **kwargs)
        assert a == b
        assert a != c

    def test_adding_a_class_keeps_first_class_stream(self):
        """Child seed spawning isolates classes from one another."""
        base = SyntheticTraceConfig(duration_median=100.0)
        solo = generate_mixture([(base, 1.0)], n_jobs=40, horizon=400.0, seed=5)
        duo = generate_mixture(
            [(base, 1.0), (SyntheticTraceConfig(duration_median=900.0), 1.0)],
            n_jobs=80,
            horizon=400.0,
            seed=5,
        )
        solo_durations = sorted(j.duration for j in solo)
        duo_durations = sorted(j.duration for j in duo)
        # Every job of the solo run reappears untouched in the duo run.
        for d in solo_durations:
            assert any(abs(d - x) < 1e-12 for x in duo_durations)

    def test_needs_a_class(self):
        with pytest.raises(ValueError, match="job class"):
            generate_mixture([], n_jobs=10, horizon=100.0)


class TestCorrelated:
    @staticmethod
    def _bursty(n=400):
        from repro.workload.synthetic import SyntheticTraceConfig

        return SyntheticTraceConfig(
            n_jobs=n,
            horizon=86_400.0,
            burst_rate_multiplier=6.0,
            burst_on_mean=1_200.0,
            burst_off_mean=7_200.0,
        )

    @staticmethod
    def _binned_corr(a, b, horizon=86_400.0, bin_s=1_800.0):
        import numpy as np

        bins = np.arange(0.0, horizon + bin_s, bin_s)
        ha, _ = np.histogram([j.arrival_time for j in a], bins)
        hb, _ = np.histogram([j.arrival_time for j in b], bins)
        return float(np.corrcoef(ha, hb)[0, 1])

    def test_shapes_and_counts(self):
        from repro.workload.mixtures import correlated_traces

        cfg = self._bursty()
        traces = correlated_traces([(cfg, 100), (cfg, 250)], 86_400.0, seed=1)
        assert [len(t) for t in traces] == [100, 250]
        for trace in traces:
            arrivals = [j.arrival_time for j in trace]
            assert arrivals == sorted(arrivals)
            assert [j.job_id for j in trace] == list(range(len(trace)))

    def test_coupling_raises_cross_cluster_correlation(self):
        from repro.workload.mixtures import correlated_traces

        cfg = self._bursty()
        coupled = correlated_traces([(cfg, 400), (cfg, 400)], 86_400.0,
                                    seed=3, coupling=1.0)
        independent = correlated_traces([(cfg, 400), (cfg, 400)], 86_400.0,
                                        seed=3, coupling=0.0)
        r_coupled = self._binned_corr(*coupled)
        r_indep = self._binned_corr(*independent)
        # Deterministic given the seed: coupled streams surge together.
        assert r_coupled > r_indep + 0.3
        assert r_coupled > 0.5

    def test_zero_coupling_still_shares_diurnal_phase(self):
        from repro.workload.mixtures import correlated_traces
        from repro.workload.synthetic import SyntheticTraceConfig

        # Pure diurnal (no bursts): phase sharing alone must correlate.
        cfg = SyntheticTraceConfig(
            n_jobs=600, horizon=86_400.0, diurnal_amplitude=0.85,
            burst_rate_multiplier=1.0,
        )
        a, b = correlated_traces([(cfg, 600), (cfg, 600)], 86_400.0,
                                 seed=5, coupling=0.0)
        assert self._binned_corr(a, b) > 0.3

    def test_validation(self):
        from repro.workload.mixtures import correlated_traces

        cfg = self._bursty()
        with pytest.raises(ValueError, match="at least one cluster"):
            correlated_traces([], 86_400.0)
        with pytest.raises(ValueError, match="coupling"):
            correlated_traces([(cfg, 10)], 86_400.0, coupling=1.5)
        with pytest.raises(ValueError, match="at least one job"):
            correlated_traces([(cfg, 0)], 86_400.0)

    def test_adding_a_cluster_does_not_perturb_others(self):
        from repro.workload.mixtures import correlated_traces

        cfg = self._bursty()
        two = correlated_traces([(cfg, 50), (cfg, 50)], 86_400.0, seed=7)
        three = correlated_traces([(cfg, 50), (cfg, 50), (cfg, 50)], 86_400.0,
                                  seed=7)
        assert two[0] == three[0]
        assert two[1] == three[1]

    def test_mixture_merges_sorted_and_weighted(self):
        from repro.workload.mixtures import generate_correlated_mixture

        cfg = self._bursty()
        mix = generate_correlated_mixture([(cfg, 0.75), (cfg, 0.25)], 200,
                                          86_400.0, seed=2, coupling=1.0)
        assert len(mix) == 200
        arrivals = [j.arrival_time for j in mix]
        assert arrivals == sorted(arrivals)
        assert [j.job_id for j in mix] == list(range(200))

    def test_burst_windows_bounded_and_ordered(self, rng):
        from repro.workload.mixtures import sample_burst_windows

        windows = sample_burst_windows(self._bursty(), 86_400.0, rng)
        flat = [t for w in windows for t in w]
        assert flat == sorted(flat)
        assert all(0.0 <= s < e <= 2 * 86_400.0 for s, e in windows)

    def test_heterogeneous_duty_cycles_keep_base_rate(self):
        # Regression: the duty-cycle correction must mix the SHARED
        # chain's duty with the stream's own (per the coupling weight);
        # normalizing by the stream's own duty alone suppressed the
        # realized rate of any cluster whose sojourn parameters differ
        # from the shared (first) cluster's.
        from dataclasses import replace

        from repro.workload.mixtures import correlated_traces

        calm = self._bursty(400)  # long off periods: low duty
        frantic = replace(calm, burst_off_mean=900.0)  # high duty
        horizon = 86_400.0
        _, trace_b = correlated_traces(
            [(calm, 400), (frantic, 400)], horizon, seed=11, coupling=1.0
        )
        # 400 jobs at frantic.base_rate should span roughly the horizon.
        assert trace_b[-1].arrival_time == pytest.approx(horizon, rel=0.25)
