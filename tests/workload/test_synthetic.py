"""Tests for repro.workload.synthetic."""

import numpy as np
import pytest

from repro.workload.stats import characterize
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def medium_trace():
    config = SyntheticTraceConfig(n_jobs=3000, horizon=3000 / (100_000 / (7 * 86400.0)))
    return config, generate_trace(config, seed=11)


class TestGeneration:
    def test_job_count(self, medium_trace):
        config, jobs = medium_trace
        assert len(jobs) == 3000

    def test_sorted_by_arrival(self, medium_trace):
        _, jobs = medium_trace
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_sequential_ids(self, medium_trace):
        _, jobs = medium_trace
        assert [j.job_id for j in jobs] == list(range(3000))

    def test_durations_within_paper_bounds(self, medium_trace):
        config, jobs = medium_trace
        for job in jobs:
            assert config.min_duration <= job.duration <= config.max_duration

    def test_resources_in_unit_interval(self, medium_trace):
        _, jobs = medium_trace
        for job in jobs:
            assert all(0.0 < r <= 1.0 for r in job.resources)
            assert len(job.resources) == 3

    def test_deterministic_per_seed(self):
        config = SyntheticTraceConfig(n_jobs=100, horizon=10_000.0)
        a = generate_trace(config, seed=5)
        b = generate_trace(config, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        config = SyntheticTraceConfig(n_jobs=100, horizon=10_000.0)
        a = generate_trace(config, seed=5)
        b = generate_trace(config, seed=6)
        assert a != b

    def test_start_id_offset(self):
        config = SyntheticTraceConfig(n_jobs=10, horizon=1000.0)
        jobs = generate_trace(config, seed=0, start_id=500)
        assert jobs[0].job_id == 500

    def test_mean_rate_near_target_over_full_cycles(self):
        # Short traces sit on a diurnal peak or trough by design; over
        # several full day cycles the mean rate must approach the target.
        config = SyntheticTraceConfig(
            n_jobs=20_000, horizon=20_000 / (100_000 / (7 * 86400.0))
        )
        stats = characterize(generate_trace(config, seed=11))
        assert stats.arrival_rate == pytest.approx(config.base_rate, rel=0.35)

    def test_arrivals_burstier_than_poisson(self, medium_trace):
        # Diurnal modulation + bursts => inter-arrival CV above 1.
        _, jobs = medium_trace
        stats = characterize(jobs)
        assert stats.interarrival_cv > 1.0

    def test_resource_correlation_positive(self, medium_trace):
        _, jobs = medium_trace
        demand = np.array([j.resources for j in jobs])
        corr = np.corrcoef(demand[:, 0], demand[:, 1])[0, 1]
        assert corr > 0.15


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_jobs": 0},
            {"horizon": 0.0},
            {"diurnal_amplitude": 1.0},
            {"burst_rate_multiplier": 0.5},
            {"min_duration": 0.0},
            {"min_duration": 100.0, "max_duration": 50.0},
            {"correlation": 1.5},
            {"resource_floor": 0.0},
        ],
    )
    def test_invalid_config_raises(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(**kwargs)

    def test_base_rate(self):
        config = SyntheticTraceConfig(n_jobs=1000, horizon=2000.0)
        assert config.base_rate == pytest.approx(0.5)

    def test_defaults_are_paper_scale(self):
        config = SyntheticTraceConfig()
        assert config.n_jobs == 100_000
        assert config.horizon == pytest.approx(7 * 86400.0)
        assert config.min_duration == 60.0
        assert config.max_duration == 7200.0
