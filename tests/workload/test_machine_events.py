"""Tests for the Google machine-events churn reader and its replay wiring."""

from pathlib import Path

import pytest

from repro.scenarios.specs import ScenarioSpec, TraceReplaySpec, WorkloadSpec
from repro.workload.trace import read_google_machine_events

FIXTURE = Path("tests/fixtures/google_machine_events_small.csv")
TASK_FIXTURE = Path("tests/fixtures/google_task_events_small.csv")

# Keep in sync with tests/fixtures/make_machine_fixture.py.
N_MACHINES = 12
N_CLOSED_DRAINS = 6
N_OPEN_DRAINS = 1
SPAN = 4 * 3600.0


def mk(time_us, machine, event):
    return f"{time_us},{machine},{event},platform,0.5,0.5"


class TestReader:
    def test_fixture_closed_drains(self):
        events = read_google_machine_events([FIXTURE], num_servers=5)
        assert len(events) == N_CLOSED_DRAINS
        assert all(e.fraction == 0.0 for e in events)
        assert all(e.duration >= 1.0 for e in events)
        # Sorted by start time, re-based so the timeline starts at 0.
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)

    def test_open_drain_closes_at_open_duration(self):
        closed = read_google_machine_events([FIXTURE], num_servers=5)
        with_open = read_google_machine_events(
            [FIXTURE], num_servers=5, open_duration=SPAN
        )
        assert len(with_open) == N_CLOSED_DRAINS + N_OPEN_DRAINS
        extra = set(with_open) - set(closed)
        (open_event,) = extra
        assert open_event.time + open_event.duration == pytest.approx(SPAN)

    def test_machines_map_round_robin_onto_the_fleet(self):
        events = read_google_machine_events([FIXTURE], num_servers=3)
        assert all(0 <= e.server_id < 3 for e in events)
        single = read_google_machine_events([FIXTURE], num_servers=1)
        assert all(e.server_id == 0 for e in single)

    def test_subsecond_flap_dropped(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text(
            "\n".join(
                [
                    mk(0, 1, 0),
                    mk(10_000_000, 1, 1),
                    mk(10_400_000, 1, 0),  # 0.4 s flap
                    mk(20_000_000, 1, 1),
                    mk(25_000_000, 1, 0),  # 5 s drain
                ]
            )
            + "\n"
        )
        events = read_google_machine_events([path], num_servers=2)
        assert len(events) == 1
        assert events[0].duration == pytest.approx(5.0)

    def test_noise_rows_skipped(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text(
            "\n".join(
                [
                    "garbage",
                    mk(0, 1, 0),
                    mk(5_000_000, 1, 2),  # UPDATE: ignored
                    mk(10_000_000, 1, 1),
                    mk(70_000_000, 1, 0),
                ]
            )
            + "\n"
        )
        events = read_google_machine_events([path], num_servers=2)
        assert len(events) == 1
        assert events[0].duration == pytest.approx(60.0)

    def test_empty_input(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("")
        assert read_google_machine_events([path], num_servers=2) == ()

    def test_out_of_order_rows_tolerated(self, tmp_path):
        # REMOVE written after its ADD in file order, earlier in time.
        path = tmp_path / "m.csv"
        path.write_text(
            "\n".join([mk(0, 1, 0), mk(90_000_000, 1, 0), mk(30_000_000, 1, 1)])
            + "\n"
        )
        events = read_google_machine_events([path], num_servers=2)
        assert len(events) == 1
        assert events[0].time == pytest.approx(30.0)
        assert events[0].duration == pytest.approx(60.0)

    def test_rejects_nonpositive_fleet(self):
        with pytest.raises(ValueError, match="num_servers"):
            read_google_machine_events([FIXTURE], num_servers=0)


def replay_scenario(machine_events=(str(FIXTURE),), compression=1.0):
    return ScenarioSpec(
        name="machine-replay",
        description="replay with recorded churn",
        workload=WorkloadSpec(
            replay=TraceReplaySpec(
                paths=(str(TASK_FIXTURE),),
                machine_events=machine_events,
                time_compression=compression,
            ),
            n_train_segments=1,
        ),
    )


class TestReplayWiring:
    def test_capacity_events_come_from_the_recording(self):
        spec = replay_scenario()
        horizon = spec.horizon_for(80)
        events = spec.capacity_events(horizon)
        assert events
        assert all(e.time < horizon for e in events)
        assert all(0 <= e.server_id < spec.fleet.num_servers for e in events)

    def test_time_compression_applies_to_churn(self):
        slow = replay_scenario().capacity_events(SPAN)
        fast = replay_scenario(compression=2.0).capacity_events(SPAN)
        assert fast  # still inside the (uncompressed) horizon bound
        assert fast[0].time == pytest.approx(slow[0].time / 2.0)
        assert fast[0].duration == pytest.approx(slow[0].duration / 2.0)

    def test_machine_files_key_the_content_dict(self):
        with_churn = replay_scenario()
        without = replay_scenario(machine_events=())
        assert with_churn.content_key() != without.content_key()
        payload = with_churn.content_dict()
        assert payload["workload"]["replay"]["machine_files"]

    def test_replay_cell_runs_with_recorded_churn(self):
        from repro.scenarios.orchestrator import run_cell

        result = run_cell(replay_scenario(), "round-robin", n_jobs=60, seed=0)
        assert result["capacity_events"] > 0
        assert result["n_jobs_completed"] > 0
