"""Regenerate ``google_machine_events_small.csv`` (committed fixture).

A synthetic stand-in for the Google cluster-usage *machine events* table
(Reiss, Wilkes & Hellerstein, 2011): headerless rows whose relevant
columns are timestamp (µs), machine ID (col 1) and event type (col 2,
ADD=0 / REMOVE=1 / UPDATE=2). Deliberately messy the way the real table
is:

* the fleet is dumped as ADD rows at t = 0;
* several machines go through one or two REMOVE/ADD maintenance cycles;
* one machine is REMOVEd and never comes back (open drain at EOF);
* one REMOVE/ADD flap shorter than a second (readers should drop it);
* UPDATE events, a malformed row, and an out-of-order region.

Run ``python tests/fixtures/make_machine_fixture.py`` from the repo root
to rewrite the CSV (deterministic: fixed seed).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

OUT = Path(__file__).parent / "google_machine_events_small.csv"

#: Machines in the fixture fleet (keep in sync with tests).
N_MACHINES = 12
#: Closed REMOVE->ADD drains the reader should extract (>= 1 s each).
N_CLOSED_DRAINS = 6
#: Open drains at EOF (closed only when the caller passes open_duration).
N_OPEN_DRAINS = 1


def _row(time_us: int, machine_id: int, event: int) -> str:
    return f"{time_us},{machine_id},{event},platform-a,0.5,0.5"


def main() -> None:
    rng = np.random.default_rng(20260727)
    span = 4 * 3600.0
    machines = [7_000_000 + i for i in range(N_MACHINES)]
    rows: list[tuple[int, str]] = [(0, _row(0, m, 0)) for m in machines]

    # Six closed maintenance drains (one machine gets two cycles).
    cycles = [
        machines[1],
        machines[3],
        machines[5],
        machines[8],
        machines[8],
        machines[10],
    ]
    t = 600.0
    for machine in cycles:
        down = float(rng.uniform(300.0, 1800.0))
        t0 = int(t * 1e6)
        t1 = int((t + down) * 1e6)
        rows.append((t0, _row(t0, machine, 1)))
        rows.append((t1, _row(t1, machine, 0)))
        t += down + float(rng.uniform(600.0, 1200.0))

    # A sub-second flap the reader must drop.
    tf = int(0.75 * span * 1e6)
    rows.append((tf, _row(tf, machines[2], 1)))
    rows.append((tf + 400_000, _row(tf + 400_000, machines[2], 0)))

    # An open drain: removed near the end, never re-added.
    to = int(0.9 * span * 1e6)
    rows.append((to, _row(to, machines[4], 1)))

    # Noise: UPDATE events and a malformed row.
    for _ in range(4):
        tu = int(rng.uniform(0.0, span) * 1e6)
        rows.append((tu, _row(tu, int(rng.choice(machines)), 2)))
    rows.append((int(span * 1e6 // 2), "not,a"))

    # Mostly time-sorted, with a shuffled slice (out-of-order region).
    rows.sort(key=lambda r: r[0])
    mid = len(rows) // 2
    chunk = rows[mid : mid + 6]
    rng.shuffle(chunk)
    rows[mid : mid + 6] = chunk

    OUT.write_text("\n".join(text for _, text in rows) + "\n")
    print(f"wrote {len(rows)} rows to {OUT}")


if __name__ == "__main__":
    main()
