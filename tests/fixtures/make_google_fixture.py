"""Regenerate ``google_task_events_small.csv`` (committed fixture).

A synthetic stand-in for one Google cluster-usage *task events* part
file (Reiss, Wilkes & Hellerstein, 2011): headerless rows whose relevant
columns are timestamp (µs), job ID (col 2), event type (col 5) and
normalized CPU/mem/disk requests (cols 9-11). Deliberately messy the way
the real trace is:

* job-ID reuse — several IDs run two SUBMIT/FINISH incarnations;
* out-of-order rows — the file is not fully timestamp-sorted;
* noise — SCHEDULE/EVICT events, rows with missing resources, a
  malformed row, and one pair whose duration falls outside [1 min, 2 h].

Run ``python tests/fixtures/make_google_fixture.py`` from the repo root
to rewrite the CSV (deterministic: fixed seed).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

OUT = Path(__file__).parent / "google_task_events_small.csv"

#: Jobs the reader should extract (keep in sync with tests).
N_EXPECTED = 120


def _row(time_us: int, job_id: int, event: int, res=None) -> str:
    cpu, mem, disk = ("", "", "") if res is None else (
        f"{res[0]:.5f}",
        f"{res[1]:.5f}",
        f"{res[2]:.5f}",
    )
    return (
        f"{time_us},,{job_id},0,machine-{job_id % 40},{event},"
        f"user,cls,0,{cpu},{mem},{disk},0"
    )


def main() -> None:
    rng = np.random.default_rng(20260727)
    rows: list[tuple[int, str]] = []
    next_id = 5_000_000_000

    def emit_job(t_submit_s: float, duration_s: float, job_id: int) -> None:
        res = (
            float(rng.uniform(0.05, 0.45)),
            float(rng.uniform(0.05, 0.35)),
            float(rng.uniform(0.02, 0.25)),
        )
        t0 = int(t_submit_s * 1e6)
        t1 = int((t_submit_s + duration_s) * 1e6)
        rows.append((t0, _row(t0, job_id, 0, res)))
        # Realistic lifecycle noise between submit and finish.
        if rng.random() < 0.4:
            ts = int((t_submit_s + duration_s * 0.1) * 1e6)
            rows.append((ts, _row(ts, job_id, 1, res)))  # SCHEDULE
        rows.append((t1, _row(t1, job_id, 4, res)))

    # 100 plain jobs over a ~4 h window, diurnal-ish arrival density.
    span = 4 * 3600.0
    arrivals = np.sort(rng.uniform(0.0, span, size=100))
    for t in arrivals:
        emit_job(float(t), float(rng.uniform(90.0, 2800.0)), next_id)
        next_id += 1

    # 10 IDs reused for two incarnations each (20 more valid jobs).
    for _ in range(10):
        job_id = next_id
        next_id += 1
        t_a = float(rng.uniform(0.0, span / 2))
        d_a = float(rng.uniform(120.0, 1200.0))
        emit_job(t_a, d_a, job_id)
        t_b = t_a + d_a + float(rng.uniform(300.0, 3600.0))
        emit_job(t_b, float(rng.uniform(120.0, 1200.0)), job_id)

    # Noise the reader must reject: a too-short job, an unfinished job,
    # a submit with missing resources, and a malformed row.
    emit_job(float(rng.uniform(0.0, span)), 12.0, next_id)  # < 60 s
    t = int(rng.uniform(0.0, span) * 1e6)
    rows.append((t, _row(t, next_id + 1, 0, (0.2, 0.2, 0.1))))  # no FINISH
    t = int(rng.uniform(0.0, span) * 1e6)
    rows.append((t, _row(t, next_id + 2, 0, None)))  # missing resources
    rows.append((t + 1, "not,a,valid,row"))

    # Mostly time-sorted, with a shuffled slice (out-of-order region).
    rows.sort(key=lambda r: r[0])
    mid = len(rows) // 2
    chunk = rows[mid : mid + 12]
    rng.shuffle(chunk)
    rows[mid : mid + 12] = chunk

    OUT.write_text("\n".join(text for _, text in rows) + "\n")
    print(f"wrote {len(rows)} rows to {OUT}")


if __name__ == "__main__":
    main()
