"""Tests for repro.sim.events."""

import pytest

from repro.sim.events import EventQueue


class TestScheduling:
    def test_executes_in_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(5.0, lambda t: log.append(("b", t)))
        q.schedule(1.0, lambda t: log.append(("a", t)))
        q.schedule(9.0, lambda t: log.append(("c", t)))
        q.run_until_empty()
        assert log == [("a", 1.0), ("b", 5.0), ("c", 9.0)]

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        log = []
        for name in "xyz":
            q.schedule(3.0, lambda t, name=name: log.append(name))
        q.run_until_empty()
        assert log == ["x", "y", "z"]

    def test_now_advances(self):
        q = EventQueue()
        q.schedule(4.0, lambda t: None)
        q.run_until_empty()
        assert q.now == 4.0

    def test_schedule_in_past_raises(self):
        q = EventQueue()
        q.schedule(10.0, lambda t: None)
        q.run_until_empty()
        with pytest.raises(ValueError, match="before now"):
            q.schedule(5.0, lambda t: None)

    def test_schedule_in_relative(self):
        q = EventQueue()
        times = []
        q.schedule(2.0, lambda t: q.schedule_in(3.0, lambda t2: times.append(t2)))
        q.run_until_empty()
        assert times == [5.0]

    def test_schedule_in_negative_delay_raises(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule_in(-1.0, lambda t: None)

    def test_events_scheduled_during_run_execute(self):
        q = EventQueue()
        log = []

        def chain(t):
            log.append(t)
            if t < 3.0:
                q.schedule(t + 1.0, chain)

        q.schedule(1.0, chain)
        q.run_until_empty()
        assert log == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        log = []
        handle = q.schedule(1.0, lambda t: log.append("cancelled"))
        q.schedule(2.0, lambda t: log.append("kept"))
        handle.cancel()
        q.run_until_empty()
        assert log == ["kept"]

    def test_len_ignores_cancelled(self):
        q = EventQueue()
        h1 = q.schedule(1.0, lambda t: None)
        q.schedule(2.0, lambda t: None)
        assert len(q) == 2
        h1.cancel()
        assert len(q) == 1

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        h = q.schedule(1.0, lambda t: None)
        q.schedule(2.0, lambda t: None)
        h.cancel()
        assert q.peek_time() == 2.0

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    def test_double_cancel_counted_once(self):
        q = EventQueue()
        h = q.schedule(1.0, lambda t: None)
        q.schedule(2.0, lambda t: None)
        h.cancel()
        h.cancel()
        assert len(q) == 1

    def test_cancel_after_pop_is_noop(self):
        q = EventQueue()
        h = q.schedule(1.0, lambda t: None)
        q.schedule(2.0, lambda t: None)
        popped = q.pop()
        assert popped is h
        h.cancel()  # stale handle: the event already ran
        assert len(q) == 1

    def test_len_constant_with_many_tombstones(self):
        # len() is a maintained counter, not a heap scan: heavy cancelled
        # backlogs must not change the answer.
        q = EventQueue()
        handles = [q.schedule(float(i + 1), lambda t: None) for i in range(1000)]
        for h in handles[:900]:
            h.cancel()
        assert len(q) == 100
        q.run_until_empty()
        assert len(q) == 0


class TestCounterInvariants:
    """The O(1) ``len()`` counter must never drift from the heap's truth."""

    @staticmethod
    def _live_in_heap(q: EventQueue) -> int:
        return sum(1 for e in q._heap if not e.cancelled)

    def test_cancel_after_peek_prune_is_noop(self):
        q = EventQueue()
        h = q.schedule(1.0, lambda t: None)
        q.schedule(2.0, lambda t: None)
        h.cancel()
        q.peek_time()  # prunes the cancelled tombstone off the heap
        h.cancel()  # stale handle, event no longer in the heap
        assert len(q) == 1 == self._live_in_heap(q)

    def test_past_event_error_keeps_counter_consistent(self):
        # Regression: the corrupted-clock error path popped the event off
        # the heap without decrementing the live counter, so a caller
        # catching the error saw len() overcount forever (and a
        # ``while len(q)`` drain would spin on pops returning None).
        q = EventQueue()
        h = q.schedule(5.0, lambda t: None)
        q.now = 10.0  # simulate a corrupted clock
        with pytest.raises(RuntimeError, match="in the past"):
            q.pop()
        assert len(q) == 0 == self._live_in_heap(q)
        assert q.pop() is None
        h.cancel()  # stale handle after the error path: still a no-op
        assert len(q) == 0

    def test_cancel_storm_never_goes_negative(self):
        q = EventQueue()
        handles = [q.schedule(float(i + 1), lambda t: None) for i in range(20)]
        for _ in range(3):  # every handle cancelled three times over
            for h in handles:
                h.cancel()
                assert len(q) >= 0
        assert len(q) == 0 == self._live_in_heap(q)
        assert q.run_until_empty() == 0

    def test_randomized_op_sequence_invariant(self):
        # White-box fuzz: across arbitrary schedule/cancel/pop interleavings
        # (including double cancels and cancels of popped handles), len()
        # must equal the number of live events actually in the heap.
        import random

        rng = random.Random(1234)
        q = EventQueue()
        handles = []
        for _ in range(600):
            op = rng.random()
            if op < 0.45:
                handles.append(
                    q.schedule(q.now + rng.uniform(0.0, 10.0), lambda t: None)
                )
            elif op < 0.8 and handles:
                rng.choice(handles).cancel()  # may be stale or already cancelled
            else:
                popped = q.pop()
                if popped is not None and rng.random() < 0.5:
                    popped.cancel()  # cancel after pop
            assert len(q) == self._live_in_heap(q)
            assert len(q) >= 0
        q.run_until_empty()
        assert len(q) == 0


class TestRun:
    def test_run_returns_event_count(self):
        q = EventQueue()
        for i in range(5):
            q.schedule(float(i), lambda t: None)
        assert q.run_until_empty() == 5

    def test_max_events_stops_early(self):
        q = EventQueue()
        for i in range(10):
            q.schedule(float(i), lambda t: None)
        assert q.run_until_empty(max_events=4) == 4
        assert len(q) == 6

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None
