"""Tests for repro.sim.server: the paper's Figs. 3 and 4 semantics.

Scenario tests construct a single server with a scripted DPM policy and
assert exact start/finish times, power-state transitions, and energy /
queue-time integrals.
"""

import math

import numpy as np
import pytest

from repro.sim.events import EventQueue
from repro.sim.interfaces import PowerPolicy
from repro.sim.job import Job
from repro.sim.power import PowerModel
from repro.sim.server import PowerState, Server


class ScriptedPolicy(PowerPolicy):
    """Returns queued timeout values and records every decision epoch."""

    def __init__(self, timeouts=()):
        self.queue = list(timeouts)
        self.epochs = []
        self.assigned = []

    def on_idle(self, server, now):
        self.epochs.append(("idle", now))
        return self.queue.pop(0) if self.queue else PowerPolicy.NEVER

    def on_active(self, server, now, from_sleep):
        self.epochs.append(("wake_sleep" if from_sleep else "wake_idle", now))

    def on_job_assigned(self, server, job, now):
        self.assigned.append((job.job_id, now))


def make_server(policy=None, initially_on=True, power_model=None, **kwargs):
    events = EventQueue()
    server = Server(
        server_id=0,
        power_model=power_model or PowerModel(),
        events=events,
        policy=policy or ScriptedPolicy(),
        initially_on=initially_on,
        **kwargs,
    )
    return server, events


def job(jid, arrival, duration, cpu, mem=0.1, disk=0.1):
    return Job(jid, arrival, duration, (cpu, mem, disk))


class TestFigure3Fcfs:
    """Fig. 3: jobs of 50/40/40 % CPU; the third waits for the first."""

    def test_head_of_line_blocking_and_latencies(self):
        policy = ScriptedPolicy()
        server, events = make_server(policy)
        j1 = job(1, 0.0, 100.0, 0.5)
        j2 = job(2, 10.0, 100.0, 0.4)
        j3 = job(3, 20.0, 100.0, 0.4)
        for j in (j1, j2, j3):
            events.schedule(j.arrival_time, lambda t, j=j: server.assign(j, t))
        events.run_until_empty()
        # j1 and j2 fit together (0.9 CPU); j3 (0.4) must wait for j1's
        # completion at t=100.
        assert j1.start_time == 0.0 and j2.start_time == 10.0
        assert j3.start_time == 100.0
        assert j3.latency == pytest.approx(180.0)  # waited 80 + ran 100
        assert j1.latency == pytest.approx(100.0)

    def test_fcfs_order_enforced_even_if_later_job_fits(self):
        # Head needs 0.8 CPU and blocks; a small job behind it must NOT
        # jump the queue (strict FCFS, per Sec. III).
        server, events = make_server()
        j1 = job(1, 0.0, 100.0, 0.5)
        j_big = job(2, 1.0, 50.0, 0.8)
        j_small = job(3, 2.0, 10.0, 0.1)
        for j in (j1, j_big, j_small):
            events.schedule(j.arrival_time, lambda t, j=j: server.assign(j, t))
        events.run_until_empty()
        assert j_big.start_time == 100.0
        assert j_small.start_time == 100.0  # released together with head

    def test_memory_dimension_blocks_too(self):
        server, events = make_server()
        j1 = Job(1, 0.0, 100.0, (0.1, 0.9, 0.1))
        j2 = Job(2, 1.0, 50.0, (0.1, 0.5, 0.1))
        for j in (j1, j2):
            events.schedule(j.arrival_time, lambda t, j=j: server.assign(j, t))
        events.run_until_empty()
        assert j2.start_time == 100.0

    def test_utilization_tracks_running_jobs(self):
        server, events = make_server()
        j1 = job(1, 0.0, 100.0, 0.5)
        server.assign(j1, 0.0)
        assert server.cpu_utilization == pytest.approx(0.5)
        events.run_until_empty()
        assert server.cpu_utilization == 0.0


class TestBootDelay:
    def test_job_to_sleeping_server_waits_ton(self):
        policy = ScriptedPolicy()
        server, events = make_server(policy, initially_on=False)
        j1 = job(1, 0.0, 100.0, 0.5)
        events.schedule(0.0, lambda t: server.assign(j1, t))
        events.run_until_empty()
        assert j1.start_time == pytest.approx(30.0)  # Ton = 30
        assert j1.latency == pytest.approx(130.0)
        assert ("wake_sleep", 0.0) in policy.epochs
        assert server.wakeups == 1

    def test_jobs_arriving_during_boot_queue_up(self):
        server, events = make_server(initially_on=False)
        j1 = job(1, 0.0, 100.0, 0.3)
        j2 = job(2, 10.0, 100.0, 0.3)
        for j in (j1, j2):
            events.schedule(j.arrival_time, lambda t, j=j: server.assign(j, t))
        events.run_until_empty()
        assert j1.start_time == pytest.approx(30.0)
        assert j2.start_time == pytest.approx(30.0)
        assert server.wakeups == 1  # second arrival did not re-trigger boot


class TestFigure4PowerManagement:
    """Fig. 4: ad-hoc versus timeout DPM around a 2-job gap."""

    def _run(self, timeout, gap_arrival):
        policy = ScriptedPolicy(timeouts=[timeout, PowerPolicy.NEVER])
        server, events = make_server(policy, initially_on=False)
        j1 = job(1, 0.0, 50.0, 0.5)
        j2 = job(2, gap_arrival, 50.0, 0.7)
        for j in (j1, j2):
            events.schedule(j.arrival_time, lambda t, j=j: server.assign(j, t))
        events.run_until_empty()
        return server, policy, j1, j2

    def test_ad_hoc_pays_double_transition(self):
        # j1 runs 30..80; immediate shutdown 80..110; j2 arrives at 90
        # (during shutdown) -> waits for sleep at 110, boots 110..140.
        server, policy, j1, j2 = self._run(timeout=0.0, gap_arrival=90.0)
        assert j1.start_time == pytest.approx(30.0)
        assert j2.start_time == pytest.approx(140.0)
        assert j2.latency == pytest.approx(50.0 + 50.0)  # waited 50, ran 50
        assert server.wakeups == 2

    def test_dpm_timeout_serves_immediately(self):
        # Same arrivals with a 60 s timeout: server still idle at t=90,
        # so j2 starts immediately (t'4 < t4 in the paper's notation).
        server, policy, j1, j2 = self._run(timeout=60.0, gap_arrival=90.0)
        assert j2.start_time == pytest.approx(90.0)
        assert j2.latency == pytest.approx(50.0)
        assert server.wakeups == 1
        assert ("wake_idle", 90.0) in policy.epochs

    def test_timeout_expires_then_sleeps(self):
        server, policy, j1, j2 = self._run(timeout=60.0, gap_arrival=400.0)
        # Idle 80..140, shutdown 140..170, sleep until 400, boot, start 430.
        assert j2.start_time == pytest.approx(430.0)
        assert server.wakeups == 2

    def test_infinite_timeout_never_sleeps(self):
        server, policy, j1, j2 = self._run(timeout=math.inf, gap_arrival=400.0)
        assert j2.start_time == pytest.approx(400.0)
        assert server.wakeups == 1


class TestEnergyAccounting:
    def test_idle_energy_exact(self):
        server, events = make_server()
        server.finalize(100.0)
        assert server.energy_joules == pytest.approx(87.0 * 100.0)

    def test_sleep_consumes_nothing(self):
        server, events = make_server(initially_on=False)
        server.finalize(1000.0)
        assert server.energy_joules == 0.0

    def test_single_job_energy_breakdown(self):
        # Boot 0..30 @145 W, run 30..130 @P(0.5), idle forever after.
        policy = ScriptedPolicy(timeouts=[PowerPolicy.NEVER])
        server, events = make_server(policy, initially_on=False)
        j1 = job(1, 0.0, 100.0, 0.5)
        events.schedule(0.0, lambda t: server.assign(j1, t))
        events.run_until_empty()
        server.finalize(200.0)
        pm = PowerModel()
        expected = 30 * 145.0 + 100 * pm.active_power(0.5) + 70 * 87.0
        assert server.energy_joules == pytest.approx(expected)

    def test_full_cycle_energy(self):
        # Boot 30 + run 100 + immediate shutdown 30 + sleep.
        policy = ScriptedPolicy(timeouts=[0.0])
        server, events = make_server(policy, initially_on=False)
        j1 = job(1, 0.0, 100.0, 0.5)
        events.schedule(0.0, lambda t: server.assign(j1, t))
        events.run_until_empty()
        server.finalize(500.0)
        pm = PowerModel()
        expected = 30 * 145.0 + 100 * pm.active_power(0.5) + 30 * 145.0
        assert server.energy_joules == pytest.approx(expected)
        assert server.state is PowerState.SLEEP

    def test_account_idempotent(self):
        server, events = make_server()
        server.account(50.0)
        first = server.energy_joules
        server.account(50.0)
        assert server.energy_joules == first

    def test_time_backwards_raises(self):
        server, events = make_server()
        server.account(50.0)
        with pytest.raises(RuntimeError):
            server.account(40.0)

    def test_custom_transition_power_used(self):
        pm = PowerModel(transition_power=100.0)
        policy = ScriptedPolicy(timeouts=[PowerPolicy.NEVER])
        server, events = make_server(policy, initially_on=False, power_model=pm)
        j1 = job(1, 0.0, 10.0, 0.5)
        events.schedule(0.0, lambda t: server.assign(j1, t))
        events.run_until_empty()
        server.finalize(40.0)  # boot 0..30 @100 W, run 30..40
        expected = 30 * 100.0 + 10 * pm.active_power(0.5)
        assert server.energy_joules == pytest.approx(expected)


class TestIntegrals:
    def test_queue_integral_counts_waiting_only(self):
        server, events = make_server()
        j1 = job(1, 0.0, 100.0, 0.8)
        j2 = job(2, 0.0, 50.0, 0.8)  # waits 100 s behind j1
        for j in (j1, j2):
            events.schedule(j.arrival_time, lambda t, j=j: server.assign(j, t))
        events.run_until_empty()
        server.finalize(events.now)
        assert server.queue_integral == pytest.approx(100.0)
        # system integral: j1 in system 100 s + j2 in system 150 s.
        assert server.system_integral == pytest.approx(250.0)

    def test_util_integral(self):
        server, events = make_server()
        j1 = job(1, 0.0, 100.0, 0.5)
        events.schedule(0.0, lambda t: server.assign(j1, t))
        events.run_until_empty()
        server.finalize(100.0)
        assert server.util_integral == pytest.approx(50.0)

    def test_overload_integral_above_threshold(self):
        server, events = make_server(overload_threshold=0.9)
        j1 = job(1, 0.0, 100.0, 0.95)
        events.schedule(0.0, lambda t: server.assign(j1, t))
        events.run_until_empty()
        server.finalize(100.0)
        assert server.overload_integral == pytest.approx(0.05 * 100.0, rel=1e-6)

    def test_no_overload_below_threshold(self):
        server, events = make_server(overload_threshold=0.9)
        j1 = job(1, 0.0, 100.0, 0.5)
        events.schedule(0.0, lambda t: server.assign(j1, t))
        events.run_until_empty()
        server.finalize(200.0)
        assert server.overload_integral == 0.0


class TestPolicyInterface:
    def test_idle_entry_is_decision_epoch(self):
        policy = ScriptedPolicy(timeouts=[PowerPolicy.NEVER])
        server, events = make_server(policy)
        j1 = job(1, 0.0, 100.0, 0.5)
        events.schedule(0.0, lambda t: server.assign(j1, t))
        events.run_until_empty()
        # Arrival at an idle server is decision epoch 2; the queue
        # draining at t=100 is epoch 1.
        assert policy.epochs == [("wake_idle", 0.0), ("idle", 100.0)]
        assert server.idle_entries == 1

    def test_arrival_during_timeout_cancels_shutdown(self):
        policy = ScriptedPolicy(timeouts=[60.0, PowerPolicy.NEVER])
        server, events = make_server(policy)
        j1 = job(1, 0.0, 10.0, 0.5)
        j2 = job(2, 30.0, 10.0, 0.5)  # within the 60 s timeout from t=10
        for j in (j1, j2):
            events.schedule(j.arrival_time, lambda t, j=j: server.assign(j, t))
        events.run_until_empty()
        assert server.wakeups == 0
        assert j2.start_time == pytest.approx(30.0)

    def test_invalid_timeout_raises(self):
        class BadPolicy(ScriptedPolicy):
            def on_idle(self, server, now):
                return -5.0

        server, events = make_server(BadPolicy())
        j1 = job(1, 0.0, 10.0, 0.5)
        events.schedule(0.0, lambda t: server.assign(j1, t))
        with pytest.raises(ValueError, match="timeout"):
            events.run_until_empty()

    def test_on_job_assigned_called_every_assignment(self):
        policy = ScriptedPolicy(timeouts=[PowerPolicy.NEVER] * 5)
        server, events = make_server(policy)
        for i in range(4):
            events.schedule(
                float(i),
                lambda t, i=i: server.assign(job(i, float(i), 5.0, 0.1), t),
            )
        events.run_until_empty()
        assert [jid for jid, _ in policy.assigned] == [0, 1, 2, 3]

    def test_counters(self):
        policy = ScriptedPolicy(timeouts=[0.0, PowerPolicy.NEVER])
        server, events = make_server(policy, initially_on=False)
        j1 = job(1, 0.0, 10.0, 0.5)
        j2 = job(2, 500.0, 10.0, 0.5)
        for j in (j1, j2):
            events.schedule(j.arrival_time, lambda t, j=j: server.assign(j, t))
        events.run_until_empty()
        assert server.jobs_assigned == 2
        assert server.jobs_completed == 2
        assert server.idle_entries == 2
        assert server.wakeups == 2


class TestValidation:
    def test_invalid_overload_threshold(self):
        with pytest.raises(ValueError):
            make_server(overload_threshold=0.0)

    def test_invalid_num_resources(self):
        with pytest.raises(ValueError):
            make_server(num_resources=0)

    def test_fits_and_remaining(self):
        server, events = make_server()
        j1 = job(1, 0.0, 100.0, 0.6)
        server.assign(j1, 0.0)
        assert server.fits(job(2, 0.0, 10.0, 0.4))
        assert not server.fits(job(3, 0.0, 10.0, 0.5))
        assert np.allclose(server.remaining(), [0.4, 0.9, 0.9])


class TestCapacityVsKill:
    """Graceful drains never kill work; ``kill_job`` is the forced path."""

    def test_capacity_drop_below_running_demand_never_kills(self):
        # A 0.6-CPU job is running; capacity drops to 0.3 (below the
        # job's demand). The drain is graceful: the job runs to its
        # normal completion and ``used`` may exceed capacity meanwhile.
        server, events = make_server()
        j1 = job(1, 0.0, 100.0, 0.6)
        events.schedule(0.0, lambda t: server.assign(j1, t))
        events.schedule(10.0, lambda t: server.set_capacity(t, 0.3))
        events.run_until_empty()
        assert server.jobs_completed == 1
        assert j1.finish_time == pytest.approx(100.0)

    def test_drained_capacity_holds_queue_until_restore(self):
        server, events = make_server()
        j1 = job(1, 0.0, 50.0, 0.5)
        j2 = job(2, 60.0, 50.0, 0.5)  # arrives while drained
        events.schedule(0.0, lambda t: server.assign(j1, t))
        events.schedule(55.0, lambda t: server.set_capacity(t, 0.0))
        events.schedule(60.0, lambda t: server.assign(j2, t))
        events.schedule(200.0, lambda t: server.set_capacity(t, 1.0))
        events.run_until_empty()
        assert j1.finish_time == pytest.approx(50.0)
        assert j2.start_time == pytest.approx(200.0)  # waited for restore

    def test_kill_job_releases_resources_and_starts_queue(self):
        # Forced eviction: the victim's resources come back immediately
        # and the queued job starts — unlike the graceful-drain path.
        # kill_job's contract says the caller cancels/supersedes the
        # victim's finish event (the fault runtime owns the handles), so
        # this test stops the drain before the stale finish at t=1000.
        server, events = make_server()
        j1 = job(1, 0.0, 1000.0, 0.8)
        j2 = job(2, 1.0, 10.0, 0.5)  # blocked behind j1
        events.schedule(0.0, lambda t: server.assign(j1, t))
        events.schedule(1.0, lambda t: server.assign(j2, t))
        events.schedule(5.0, lambda t: server.kill_job(j1, t))
        events.run_until_empty(max_events=4)  # ...through j2's finish at 15
        assert j2.start_time == pytest.approx(5.0)
        assert j2.finish_time == pytest.approx(15.0)
        assert server.jobs_completed == 1  # the kill was not a completion
        assert server.running.get(1) is None
        assert np.all(server.used <= 1e-9)

    def test_take_pending_drains_queue(self):
        server, events = make_server()
        j1 = job(1, 0.0, 1000.0, 0.9)
        j2 = job(2, 1.0, 10.0, 0.5)
        j3 = job(3, 2.0, 10.0, 0.5)
        server.assign(j1, 0.0)
        server.assign(j2, 1.0)
        server.assign(j3, 2.0)
        drained = server.take_pending(3.0)
        assert [j.job_id for j in drained] == [2, 3]
        assert not server.pending
