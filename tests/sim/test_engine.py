"""Integration tests for repro.sim.engine."""

import pytest

from repro.core.baselines import AlwaysOnPolicy, ImmediateSleepPolicy, RoundRobinBroker
from repro.sim.engine import build_simulation
from repro.sim.interfaces import Broker
from repro.sim.job import Job


def jobs_burst(n, spacing=10.0, duration=50.0, cpu=0.3):
    return [Job(i, i * spacing, duration, (cpu, 0.1, 0.1)) for i in range(n)]


class TestRun:
    def test_all_jobs_complete(self):
        engine = build_simulation(
            2, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        jobs = jobs_burst(10)
        result = engine.run(jobs)
        assert result.metrics.n_completed == 10
        assert all(j.completed for j in jobs)

    def test_round_robin_alternates(self):
        engine = build_simulation(
            2, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        jobs = jobs_burst(4)
        engine.run(jobs)
        assert [j.server_id for j in jobs] == [0, 1, 0, 1]

    def test_no_wait_latency_equals_duration(self):
        engine = build_simulation(
            4, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        jobs = jobs_burst(4, spacing=100.0, duration=50.0, cpu=0.2)
        result = engine.run(jobs)
        assert result.mean_latency == pytest.approx(50.0)

    def test_max_jobs_limits_feed(self):
        engine = build_simulation(
            2, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        result = engine.run(jobs_burst(10), max_jobs=3)
        assert result.metrics.n_arrived == 3
        assert result.metrics.n_completed == 3

    def test_generator_stream_accepted(self):
        engine = build_simulation(
            2, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        result = engine.run(iter(jobs_burst(5)))
        assert result.metrics.n_completed == 5

    def test_unsorted_trace_raises(self):
        engine = build_simulation(
            2, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        bad = [
            Job(0, 100.0, 10.0, (0.1, 0.1, 0.1)),
            Job(1, 50.0, 10.0, (0.1, 0.1, 0.1)),
        ]
        with pytest.raises(ValueError, match="sorted"):
            engine.run(bad)

    def test_broker_out_of_range_raises(self):
        class BadBroker(Broker):
            def select_server(self, job, cluster, now):
                return 99

        engine = build_simulation(2, BadBroker(), AlwaysOnPolicy(), initially_on=True)
        with pytest.raises(ValueError, match="outside"):
            engine.run(jobs_burst(1))

    def test_empty_trace(self):
        engine = build_simulation(
            2, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        result = engine.run([])
        assert result.metrics.n_completed == 0

    def test_final_time_covers_last_completion(self):
        engine = build_simulation(
            1, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        jobs = [Job(0, 0.0, 123.0, (0.5, 0.1, 0.1))]
        result = engine.run(jobs)
        assert result.final_time >= 123.0


class TestDeterminism:
    def test_identical_runs_identical_metrics(self):
        def run_once():
            engine = build_simulation(
                3, RoundRobinBroker(), ImmediateSleepPolicy(), initially_on=False
            )
            return engine.run(jobs_burst(20))

        a, b = run_once(), run_once()
        assert a.total_energy_kwh == b.total_energy_kwh
        assert a.accumulated_latency == b.accumulated_latency
        assert a.final_time == b.final_time


class TestEnergyConsistency:
    def test_metrics_energy_matches_cluster(self):
        engine = build_simulation(
            2, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        result = engine.run(jobs_burst(6))
        cluster_kwh = result.cluster.total_energy() / 3.6e6
        assert result.total_energy_kwh == pytest.approx(cluster_kwh)

    def test_always_on_energy_floor(self):
        # Two always-on servers must burn at least idle power for the
        # whole makespan.
        engine = build_simulation(
            2, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        result = engine.run(jobs_burst(6))
        floor = 2 * 87.0 * result.final_time / 3.6e6
        assert result.total_energy_kwh >= floor * 0.999

    def test_sleeping_saves_energy(self):
        jobs = jobs_burst(6, spacing=500.0, duration=50.0)
        on = build_simulation(
            2, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        off = build_simulation(
            2, RoundRobinBroker(), ImmediateSleepPolicy(), initially_on=False
        )
        r_on = on.run([j.copy() for j in jobs])
        r_off = off.run([j.copy() for j in jobs])
        assert r_off.total_energy_kwh < r_on.total_energy_kwh
