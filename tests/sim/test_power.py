"""Tests for repro.sim.power: the Eqn.-(3) power model."""

import numpy as np
import pytest

from repro.sim.power import PowerModel


class TestEquation3:
    def test_paper_endpoints(self):
        pm = PowerModel()  # paper defaults: 87 W idle, 145 W peak
        assert pm.active_power(0.0) == pytest.approx(87.0)
        # 2*1 - 1^1.4 = 1, so P(1) = P(0) + (P(100)-P(0)) = 145.
        assert pm.active_power(1.0) == pytest.approx(145.0)

    def test_midpoint_value(self):
        pm = PowerModel()
        x = 0.5
        expected = 87.0 + (145.0 - 87.0) * (2 * x - x**1.4)
        assert pm.active_power(0.5) == pytest.approx(expected)

    def test_monotonically_increasing(self):
        pm = PowerModel()
        xs = np.linspace(0, 1, 101)
        powers = [pm.active_power(x) for x in xs]
        assert all(b >= a for a, b in zip(powers, powers[1:]))

    def test_concave_above_linear_interior(self):
        # 2x - x^1.4 > x on (0, 1): sub-linear utilizations draw
        # disproportionate power (the energy-proportionality gap).
        pm = PowerModel()
        for x in (0.2, 0.5, 0.8):
            linear = 87.0 + (145.0 - 87.0) * x
            assert pm.active_power(x) > linear

    def test_clamps_outside_unit_interval(self):
        pm = PowerModel()
        assert pm.active_power(-0.5) == pm.active_power(0.0)
        assert pm.active_power(1.5) == pm.active_power(1.0)


class TestValidation:
    def test_peak_below_idle_raises(self):
        with pytest.raises(ValueError):
            PowerModel(idle_power=100.0, peak_power=90.0)

    def test_exponent_must_exceed_one(self):
        with pytest.raises(ValueError):
            PowerModel(exponent=1.0)

    def test_negative_transition_times_raise(self):
        with pytest.raises(ValueError):
            PowerModel(t_on=-1.0)

    def test_transition_power_defaults_to_peak(self):
        assert PowerModel().transition_power == 145.0

    def test_transition_power_below_idle_raises(self):
        # The paper bounds transition power below by P(0%).
        with pytest.raises(ValueError):
            PowerModel(transition_power=10.0)

    def test_custom_transition_power(self):
        assert PowerModel(transition_power=100.0).transition_power == 100.0

    def test_negative_sleep_power_raises(self):
        with pytest.raises(ValueError):
            PowerModel(sleep_power=-1.0)

    def test_frozen(self):
        pm = PowerModel()
        with pytest.raises(AttributeError):
            pm.idle_power = 10.0


class TestEnergy:
    def test_energy_is_power_times_time(self):
        pm = PowerModel()
        assert pm.energy(0.0, 10.0) == pytest.approx(870.0)

    def test_zero_dt(self):
        assert PowerModel().energy(0.5, 0.0) == 0.0

    def test_negative_dt_raises(self):
        with pytest.raises(ValueError):
            PowerModel().energy(0.5, -1.0)
