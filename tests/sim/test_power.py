"""Tests for repro.sim.power: the Eqn.-(3) power model."""

import numpy as np
import pytest

from repro.sim.power import PowerModel


class TestEquation3:
    def test_paper_endpoints(self):
        pm = PowerModel()  # paper defaults: 87 W idle, 145 W peak
        assert pm.active_power(0.0) == pytest.approx(87.0)
        # 2*1 - 1^1.4 = 1, so P(1) = P(0) + (P(100)-P(0)) = 145.
        assert pm.active_power(1.0) == pytest.approx(145.0)

    def test_midpoint_value(self):
        pm = PowerModel()
        x = 0.5
        expected = 87.0 + (145.0 - 87.0) * (2 * x - x**1.4)
        assert pm.active_power(0.5) == pytest.approx(expected)

    def test_monotonically_increasing(self):
        pm = PowerModel()
        xs = np.linspace(0, 1, 101)
        powers = [pm.active_power(x) for x in xs]
        assert all(b >= a for a, b in zip(powers, powers[1:]))

    def test_concave_above_linear_interior(self):
        # 2x - x^1.4 > x on (0, 1): sub-linear utilizations draw
        # disproportionate power (the energy-proportionality gap).
        pm = PowerModel()
        for x in (0.2, 0.5, 0.8):
            linear = 87.0 + (145.0 - 87.0) * x
            assert pm.active_power(x) > linear

    def test_clamps_outside_unit_interval(self):
        pm = PowerModel()
        assert pm.active_power(-0.5) == pm.active_power(0.0)
        assert pm.active_power(1.5) == pm.active_power(1.0)


class TestValidation:
    def test_peak_below_idle_raises(self):
        with pytest.raises(ValueError):
            PowerModel(idle_power=100.0, peak_power=90.0)

    def test_exponent_must_exceed_one(self):
        with pytest.raises(ValueError):
            PowerModel(exponent=1.0)

    def test_negative_transition_times_raise(self):
        with pytest.raises(ValueError):
            PowerModel(t_on=-1.0)

    def test_transition_power_defaults_to_peak(self):
        assert PowerModel().transition_power == 145.0

    def test_transition_power_below_idle_raises(self):
        # The paper bounds transition power below by P(0%).
        with pytest.raises(ValueError):
            PowerModel(transition_power=10.0)

    def test_custom_transition_power(self):
        assert PowerModel(transition_power=100.0).transition_power == 100.0

    def test_negative_sleep_power_raises(self):
        with pytest.raises(ValueError):
            PowerModel(sleep_power=-1.0)

    def test_frozen(self):
        pm = PowerModel()
        with pytest.raises(AttributeError):
            pm.idle_power = 10.0


class TestEnergy:
    def test_energy_is_power_times_time(self):
        pm = PowerModel()
        assert pm.energy(0.0, 10.0) == pytest.approx(870.0)

    def test_zero_dt(self):
        assert PowerModel().energy(0.5, 0.0) == 0.0

    def test_negative_dt_raises(self):
        with pytest.raises(ValueError):
            PowerModel().energy(0.5, -1.0)


class TestTariffModel:
    def test_flat_defaults(self):
        from repro.sim.power import TariffModel

        t = TariffModel()
        assert t.price_at(0.0) == pytest.approx(0.10)
        assert t.carbon_at(12 * 3600.0) == pytest.approx(400.0)
        assert t.mean_price(0.0, 1e6) == pytest.approx(0.10)

    def test_time_of_use_boundaries(self):
        from repro.sim.power import TariffModel

        t = TariffModel.time_of_use(16, 21, 0.32, 0.08)
        assert t.price_at(15.999 * 3600) == pytest.approx(0.08)
        assert t.price_at(16 * 3600) == pytest.approx(0.32)  # start inclusive
        assert t.price_at(21 * 3600) == pytest.approx(0.08)  # end exclusive
        # Daily mean: 5 peak hours out of 24.
        assert t.mean_price(0, 86400) == pytest.approx(0.08 + 5 / 24 * 0.24)

    def test_mean_across_window_boundary_is_exact(self):
        from repro.sim.power import TariffModel

        t = TariffModel.time_of_use(16, 21, 0.32, 0.08)
        # [15h, 17h]: one hour at 0.08, one at 0.32.
        assert t.mean_price(15 * 3600, 17 * 3600) == pytest.approx(0.20)

    def test_periodicity_and_multi_period_spans(self):
        from repro.sim.power import TariffModel

        t = TariffModel.time_of_use(16, 21, 0.32, 0.08)
        day = 86400.0
        assert t.mean_price(3 * day + 15 * 3600, 3 * day + 17 * 3600) == pytest.approx(
            0.20
        )
        # A full number of periods equals the daily mean exactly.
        assert t.mean_price(day / 2, day / 2 + 2 * day) == pytest.approx(
            t.mean_price(0, day)
        )

    def test_t_offset_and_shifted(self):
        from repro.sim.power import TariffModel

        t = TariffModel.time_of_use(16, 21, 0.32, 0.08)
        assert t.shifted(3600.0).price_at(15 * 3600) == pytest.approx(0.32)
        assert t.shifted(3600.0).shifted(-3600.0).price_at(15 * 3600) == pytest.approx(
            0.08
        )
        # Negative absolute times (offset shifts behind zero) stay periodic.
        assert t.mean_price(-3600.0, 3600.0) == pytest.approx(0.08)

    def test_carbon_windows(self):
        from repro.sim.power import TariffModel

        t = TariffModel(
            carbon=420.0,
            carbon_windows=(
                (0.0, 6 * 3600.0, 180.0),
                (17 * 3600.0, 21 * 3600.0, 520.0),
            ),
        )
        assert t.carbon_at(3 * 3600.0) == pytest.approx(180.0)
        assert t.carbon_at(12 * 3600.0) == pytest.approx(420.0)
        expected = (6 * 180.0 + 4 * 520.0 + 14 * 420.0) / 24.0
        assert t.mean_carbon(0, 86400) == pytest.approx(expected)

    def test_energy_cost_and_co2(self):
        from repro.sim.power import TariffModel

        t = TariffModel(price=0.20, carbon=100.0)
        assert t.energy_cost(3.6e6, 0.0, 60.0) == pytest.approx(0.20)
        assert t.energy_co2(7.2e6, 0.0, 60.0) == pytest.approx(200.0)

    def test_validation(self):
        from repro.sim.power import TariffModel

        with pytest.raises(ValueError, match="non-negative"):
            TariffModel(price=-0.1)
        with pytest.raises(ValueError, match="period"):
            TariffModel(period=0.0)
        with pytest.raises(ValueError, match="start < end"):
            TariffModel(price_windows=((10.0, 5.0, 0.2),))
        with pytest.raises(ValueError, match="overlap"):
            TariffModel(price_windows=((0.0, 7200.0, 0.2), (3600.0, 9000.0, 0.3)))
        with pytest.raises(ValueError, match="peak_start_hour"):
            TariffModel.time_of_use(21, 16, 0.3, 0.1)

    def test_from_csv_carbon_only(self, tmp_path):
        from repro.sim.power import TariffModel

        path = tmp_path / "carbon.csv"
        path.write_text(
            "time_s,carbon_g_per_kwh\n0,200\n21600,450\n61200,300\n"
        )
        t = TariffModel.from_csv(path, price=0.12)
        assert t.carbon_at(0.0) == pytest.approx(200.0)
        assert t.carbon_at(30000.0) == pytest.approx(450.0)
        assert t.carbon_at(86000.0) == pytest.approx(300.0)  # last row to period end
        assert t.price_at(30000.0) == pytest.approx(0.12)
        expected = (21600 * 200 + (61200 - 21600) * 450 + (86400 - 61200) * 300) / 86400
        assert t.mean_carbon(0, 86400) == pytest.approx(expected)

    def test_from_csv_with_price_column(self, tmp_path):
        from repro.sim.power import TariffModel

        path = tmp_path / "tariff.csv"
        path.write_text(
            "time_s,carbon_g_per_kwh,price_usd_per_kwh\n0,200,0.05\n43200,500,0.25\n"
        )
        t = TariffModel.from_csv(path)
        assert t.price_at(0.0) == pytest.approx(0.05)
        assert t.price_at(50000.0) == pytest.approx(0.25)
        assert t.mean_price(0, 86400) == pytest.approx(0.15)

    def test_from_csv_errors(self, tmp_path):
        from repro.sim.power import TariffModel

        bad_header = tmp_path / "a.csv"
        bad_header.write_text("hello,world\n0,1\n")
        with pytest.raises(ValueError, match="header"):
            TariffModel.from_csv(bad_header)

        bad_row = tmp_path / "b.csv"
        bad_row.write_text("time_s,carbon_g_per_kwh\n0,2OO\n")
        with pytest.raises(ValueError, match="unparseable"):
            TariffModel.from_csv(bad_row)

        not_at_zero = tmp_path / "c.csv"
        not_at_zero.write_text("time_s,carbon_g_per_kwh\n100,200\n")
        with pytest.raises(ValueError, match="start at"):
            TariffModel.from_csv(not_at_zero)

        not_increasing = tmp_path / "d.csv"
        not_increasing.write_text("time_s,carbon_g_per_kwh\n0,200\n500,300\n500,400\n")
        with pytest.raises(ValueError, match="increasing"):
            TariffModel.from_csv(not_increasing)

        empty = tmp_path / "e.csv"
        empty.write_text("time_s,carbon_g_per_kwh\n")
        with pytest.raises(ValueError, match="no rows"):
            TariffModel.from_csv(empty)
