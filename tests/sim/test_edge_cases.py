"""Edge-case and failure-injection tests for the simulator."""

import pytest

from repro.core.baselines import AlwaysOnPolicy, ImmediateSleepPolicy, RoundRobinBroker
from repro.sim.engine import build_simulation
from repro.sim.interfaces import PowerPolicy
from repro.sim.job import Job
from repro.sim.power import PowerModel
from repro.sim.server import PowerState


def job(jid, arrival, duration=10.0, cpu=0.5):
    return Job(jid, arrival, duration, (cpu, 0.1, 0.1))


class TestZeroTransitionTimes:
    def test_instant_boot_and_shutdown(self):
        pm = PowerModel(t_on=0.0, t_off=0.0)
        engine = build_simulation(
            1, RoundRobinBroker(), ImmediateSleepPolicy(), power_model=pm
        )
        jobs = [job(0, 0.0), job(1, 100.0)]
        result = engine.run(jobs)
        # No boot delay: latency equals duration.
        assert result.mean_latency == pytest.approx(10.0)
        # No transition energy either: only the run intervals burn power.
        expected = 2 * 10.0 * pm.active_power(0.5)
        assert result.cluster.total_energy() == pytest.approx(expected)


class TestSimultaneousEvents:
    def test_arrival_at_exact_timeout_expiry(self):
        """A job arriving at the same instant the DPM timeout fires: the
        timeout event was scheduled first, so it pops first and wins —
        the job must still be served correctly after the sleep cycle."""

        class Fixed30(PowerPolicy):
            def on_idle(self, server, now):
                return 30.0

        engine = build_simulation(1, RoundRobinBroker(), Fixed30())
        jobs = [job(0, 0.0, duration=10.0), job(1, 40.0)]  # idle at 10, timeout at 40
        result = engine.run(jobs)
        assert result.metrics.n_completed == 2
        assert jobs[1].completed

    def test_arrival_during_timeout_same_tick_as_finish(self):
        """Back-to-back zero-gap jobs: finish and next arrival at the same
        timestamp must not double-trigger idle epochs."""
        engine = build_simulation(1, RoundRobinBroker(), ImmediateSleepPolicy())
        jobs = [job(0, 0.0, duration=10.0), job(1, 10.0, duration=10.0)]
        result = engine.run(jobs)
        assert result.metrics.n_completed == 2

    def test_many_jobs_at_same_instant(self):
        engine = build_simulation(
            2, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        jobs = [job(i, 0.0, duration=5.0, cpu=0.2) for i in range(20)]
        result = engine.run(jobs)
        assert result.metrics.n_completed == 20


class TestSaturation:
    def test_full_size_jobs_serialize(self):
        # Each job needs the whole server: strictly one at a time.
        engine = build_simulation(
            1, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        jobs = [Job(i, 0.0, 10.0, (1.0, 1.0, 1.0)) for i in range(3)]
        engine.run(jobs)
        starts = sorted(j.start_time for j in jobs)
        assert starts == [0.0, 10.0, 20.0]

    def test_massive_burst_completes(self):
        engine = build_simulation(
            2, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        jobs = [job(i, float(i) * 0.001, duration=1.0, cpu=0.9) for i in range(500)]
        result = engine.run(jobs)
        assert result.metrics.n_completed == 500
        # Utilization can never exceed capacity.
        for server in result.cluster.servers:
            assert server.cpu_utilization <= 1.0 + 1e-9


class TestShutdownRace:
    def test_burst_during_shutdown_single_reboot(self):
        engine = build_simulation(1, RoundRobinBroker(), ImmediateSleepPolicy())
        jobs = [job(0, 0.0, duration=10.0)]
        # Server: boot 0-30, run 30-40, shutdown 40-70. Three jobs land
        # mid-shutdown; exactly one reboot must serve them all.
        jobs += [job(i, 50.0 + i, duration=5.0, cpu=0.2) for i in (1, 2, 3)]
        result = engine.run(jobs)
        assert result.metrics.n_completed == 4
        assert result.cluster[0].wakeups == 2

    def test_idle_forever_queue_empty(self):
        engine = build_simulation(
            1, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        result = engine.run([job(0, 0.0)])
        assert result.cluster[0].state is PowerState.IDLE


class TestMisbehavingPolicies:
    def test_nan_timeout_rejected(self):
        class NanPolicy(PowerPolicy):
            def on_idle(self, server, now):
                return float("nan")

        engine = build_simulation(1, RoundRobinBroker(), NanPolicy())
        with pytest.raises(ValueError, match="timeout"):
            engine.run([job(0, 0.0)])

    def test_policy_exception_propagates(self):
        class Exploding(PowerPolicy):
            def on_idle(self, server, now):
                raise RuntimeError("boom")

        engine = build_simulation(1, RoundRobinBroker(), Exploding())
        with pytest.raises(RuntimeError, match="boom"):
            engine.run([job(0, 0.0)])


class TestAccountingPrecision:
    def test_long_run_energy_matches_closed_form(self):
        # 100 sequential saturating jobs on one always-on server: energy
        # is exactly run-time at P(0.5) plus idle gaps at P(0).
        pm = PowerModel()
        engine = build_simulation(
            1, RoundRobinBroker(), AlwaysOnPolicy(), power_model=pm, initially_on=True
        )
        jobs = [job(i, i * 20.0, duration=10.0) for i in range(100)]
        result = engine.run(jobs)
        run_energy = 100 * 10.0 * pm.active_power(0.5)
        idle_energy = (result.final_time - 1000.0) * pm.active_power(0.0)
        assert result.cluster.total_energy() == pytest.approx(
            run_energy + idle_energy, rel=1e-12
        )
