"""Tests for repro.sim.job."""

import pytest

from repro.sim.job import CPU, DISK, MEM, Job


class TestValidation:
    def test_valid_job(self):
        job = Job(1, 10.0, 60.0, (0.5, 0.2, 0.1))
        assert job.cpu == 0.5

    def test_negative_arrival_raises(self):
        with pytest.raises(ValueError, match="arrival"):
            Job(1, -1.0, 60.0, (0.5,))

    @pytest.mark.parametrize("duration", [0.0, -5.0])
    def test_nonpositive_duration_raises(self, duration):
        with pytest.raises(ValueError, match="duration"):
            Job(1, 0.0, duration, (0.5,))

    def test_empty_resources_raise(self):
        with pytest.raises(ValueError, match="resource"):
            Job(1, 0.0, 60.0, ())

    @pytest.mark.parametrize("demand", [0.0, -0.1, 1.5])
    def test_out_of_range_demand_raises(self, demand):
        with pytest.raises(ValueError):
            Job(1, 0.0, 60.0, (demand,))

    def test_full_server_demand_allowed(self):
        Job(1, 0.0, 60.0, (1.0, 1.0, 1.0))

    def test_resource_index_constants(self):
        assert (CPU, MEM, DISK) == (0, 1, 2)


class TestRuntime:
    def test_latency_includes_wait(self):
        job = Job(1, 100.0, 50.0, (0.5,))
        job.start_time = 130.0
        job.finish_time = 180.0
        assert job.latency == 80.0
        assert job.wait_time == 30.0

    def test_latency_before_completion_raises(self):
        job = Job(1, 0.0, 50.0, (0.5,))
        with pytest.raises(RuntimeError):
            _ = job.latency

    def test_wait_before_start_raises(self):
        job = Job(1, 0.0, 50.0, (0.5,))
        with pytest.raises(RuntimeError):
            _ = job.wait_time

    def test_completed_flag(self):
        job = Job(1, 0.0, 50.0, (0.5,))
        assert not job.completed
        job.finish_time = 50.0
        assert job.completed

    def test_reset_clears_runtime_fields(self):
        job = Job(1, 0.0, 50.0, (0.5,))
        job.server_id = 3
        job.start_time = 1.0
        job.finish_time = 51.0
        job.reset()
        assert job.server_id is None and job.start_time is None
        assert not job.completed

    def test_copy_is_fresh(self):
        job = Job(1, 0.0, 50.0, (0.5, 0.2, 0.1))
        job.finish_time = 99.0
        twin = job.copy()
        assert twin.job_id == 1 and twin.resources == (0.5, 0.2, 0.1)
        assert not twin.completed

    def test_runtime_fields_not_compared(self):
        a = Job(1, 0.0, 50.0, (0.5,))
        b = Job(1, 0.0, 50.0, (0.5,))
        b.finish_time = 10.0
        assert a == b
