"""Capacity churn: graceful drains, restores, and heterogeneous fleets."""

import pytest

from repro.core.baselines import AlwaysOnPolicy, RoundRobinBroker
from repro.sim.churn import CapacityEvent, schedule_capacity_events
from repro.sim.engine import build_simulation
from repro.sim.job import Job
from repro.sim.power import PowerModel


def _engine(num_servers=2, power_model=None, capacity_events=(), initially_on=True):
    return build_simulation(
        num_servers=num_servers,
        broker=RoundRobinBroker(),
        policies=AlwaysOnPolicy(),
        power_model=power_model,
        initially_on=initially_on,
        capacity_events=capacity_events,
    )


class TestCapacityEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            CapacityEvent(time=-1.0, server_id=0, duration=10.0)
        with pytest.raises(ValueError):
            CapacityEvent(time=0.0, server_id=0, duration=0.0)
        with pytest.raises(ValueError):
            CapacityEvent(time=0.0, server_id=0, duration=10.0, fraction=1.0)

    def test_out_of_range_server_rejected(self):
        engine = _engine(num_servers=2)
        with pytest.raises(ValueError, match="2 servers"):
            schedule_capacity_events(
                engine.cluster, [CapacityEvent(time=0.0, server_id=5, duration=1.0)]
            )


class TestServerSetCapacity:
    def test_fraction_validated(self):
        engine = _engine()
        with pytest.raises(ValueError):
            engine.cluster[0].set_capacity(0.0, 1.5)

    def test_running_jobs_survive_a_drain(self):
        """A drain is graceful: the in-flight job finishes normally."""
        events = [CapacityEvent(time=10.0, server_id=0, duration=100.0)]
        engine = _engine(num_servers=1, capacity_events=events)
        jobs = [Job(0, arrival_time=0.0, duration=50.0, resources=(0.5, 0.2, 0.1))]
        result = engine.run(jobs)
        assert result.metrics.n_completed == 1
        # The job ran start-to-finish across the drain boundary.
        assert result.metrics.mean_latency == pytest.approx(50.0)

    def test_queued_job_waits_for_restore(self):
        """Work arriving at a fully drained server waits out the drain."""
        events = [CapacityEvent(time=5.0, server_id=0, duration=100.0)]
        engine = _engine(num_servers=1, capacity_events=events)
        jobs = [Job(0, arrival_time=20.0, duration=10.0, resources=(0.5, 0.2, 0.1))]
        result = engine.run(jobs)
        assert result.metrics.n_completed == 1
        # Arrived at 20, capacity back at 105, 10 s of service => ~95 s latency.
        assert result.metrics.mean_latency == pytest.approx(105.0 - 20.0 + 10.0)
        assert engine.cluster[0].capacity_fraction == 1.0  # restore happened

    def test_partial_drain_limits_concurrency(self):
        """At 50% capacity only one 0.4-CPU job fits at a time."""
        events = [
            CapacityEvent(time=0.0, server_id=0, duration=1000.0, fraction=0.5)
        ]
        engine = _engine(num_servers=1, capacity_events=events)
        jobs = [
            Job(0, arrival_time=1.0, duration=30.0, resources=(0.4, 0.1, 0.1)),
            Job(1, arrival_time=1.0, duration=30.0, resources=(0.4, 0.1, 0.1)),
        ]
        result = engine.run(jobs)
        assert result.metrics.n_completed == 2
        # Second job serialized behind the first: latency 30 vs 60.
        assert result.metrics.acc_latency == pytest.approx(30.0 + 60.0)


class TestHeterogeneousFleet:
    def test_per_server_power_models(self):
        cheap = PowerModel(idle_power=10.0, peak_power=20.0)
        dear = PowerModel(idle_power=100.0, peak_power=200.0)
        engine = _engine(num_servers=2, power_model=[cheap, dear])
        assert engine.cluster[0].power_model is cheap
        assert engine.cluster[1].power_model is dear
        assert engine.cluster.power_models == (cheap, dear)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="power models"):
            _engine(num_servers=3, power_model=[PowerModel()] * 2)

    def test_idle_power_reflects_model_mix(self):
        cheap = PowerModel(idle_power=10.0, peak_power=20.0)
        dear = PowerModel(idle_power=100.0, peak_power=200.0)
        hetero = _engine(num_servers=2, power_model=[cheap, dear])
        # Both servers idle: cluster draw is the sum of the two idle levels.
        assert hetero.cluster.total_power() == pytest.approx(110.0)

    def test_single_model_still_homogeneous(self):
        model = PowerModel(idle_power=10.0, peak_power=20.0)
        engine = _engine(num_servers=3, power_model=model)
        assert engine.cluster.power_models == (model, model, model)
        assert engine.cluster.total_power() == pytest.approx(30.0)
