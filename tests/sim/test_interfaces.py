"""Tests for repro.sim.interfaces: base-class contracts."""

import math

import pytest

from repro.sim.interfaces import Broker, PowerPolicy


class TestBroker:
    def test_select_server_abstract(self):
        with pytest.raises(NotImplementedError):
            Broker().select_server(None, None, 0.0)

    def test_optional_hooks_are_noops(self):
        broker = Broker()
        assert broker.on_job_finish(None, None, 0.0) is None
        assert broker.on_run_end(None, 0.0) is None


class TestPowerPolicy:
    def test_on_idle_abstract(self):
        with pytest.raises(NotImplementedError):
            PowerPolicy().on_idle(None, 0.0)

    def test_never_constant_is_infinite(self):
        assert math.isinf(PowerPolicy.NEVER)

    def test_optional_hooks_are_noops(self):
        policy = PowerPolicy()
        assert policy.on_active(None, 0.0, from_sleep=True) is None
        assert policy.on_job_assigned(None, None, 0.0) is None
        assert policy.on_run_end(None, 0.0) is None
