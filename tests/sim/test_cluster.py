"""Tests for repro.sim.cluster."""

import numpy as np
import pytest

from repro.sim.cluster import Cluster
from repro.sim.events import EventQueue
from repro.sim.interfaces import PowerPolicy
from repro.sim.job import Job
from repro.sim.power import PowerModel
from repro.sim.server import PowerState


class NeverSleep(PowerPolicy):
    def on_idle(self, server, now):
        return PowerPolicy.NEVER


def make_cluster(n=3, initially_on=True, policies=None):
    events = EventQueue()
    cluster = Cluster(
        num_servers=n,
        power_model=PowerModel(),
        events=events,
        policies=policies if policies is not None else NeverSleep(),
        initially_on=initially_on,
    )
    return cluster, events


class TestConstruction:
    def test_len_and_indexing(self):
        cluster, _ = make_cluster(4)
        assert len(cluster) == 4
        assert cluster[2].server_id == 2

    def test_single_policy_shared(self):
        policy = NeverSleep()
        cluster, _ = make_cluster(3, policies=policy)
        assert all(s.policy is policy for s in cluster.servers)

    def test_per_server_policies(self):
        policies = [NeverSleep() for _ in range(3)]
        cluster, _ = make_cluster(3, policies=policies)
        assert [s.policy for s in cluster.servers] == policies

    def test_policy_count_mismatch_raises(self):
        events = EventQueue()
        with pytest.raises(ValueError, match="policies"):
            Cluster(3, PowerModel(), events, [NeverSleep()] * 2)

    def test_zero_servers_raises(self):
        events = EventQueue()
        with pytest.raises(ValueError):
            Cluster(0, PowerModel(), events, NeverSleep())


class TestAggregates:
    def test_total_power_all_idle(self):
        cluster, _ = make_cluster(3)
        assert cluster.total_power() == pytest.approx(3 * 87.0)

    def test_total_power_all_sleeping(self):
        cluster, _ = make_cluster(3, initially_on=False)
        assert cluster.total_power() == 0.0

    def test_total_energy_after_sync(self):
        cluster, _ = make_cluster(2)
        cluster.sync(100.0)
        assert cluster.total_energy() == pytest.approx(2 * 87.0 * 100.0)

    def test_jobs_in_system(self):
        cluster, events = make_cluster(2)
        cluster[0].assign(Job(1, 0.0, 50.0, (0.5, 0.1, 0.1)), 0.0)
        cluster[0].assign(Job(2, 0.0, 50.0, (0.9, 0.1, 0.1)), 0.0)  # queues
        assert cluster.jobs_in_system() == 2

    def test_active_and_sleeping_counts(self):
        cluster, _ = make_cluster(3, initially_on=False)
        assert cluster.num_sleeping_servers() == 3
        assert cluster.num_active_servers() == 0
        cluster[0].assign(Job(1, 0.0, 50.0, (0.5, 0.1, 0.1)), 0.0)
        assert cluster[0].state is PowerState.BOOTING
        assert cluster.num_sleeping_servers() == 2


class TestObservation:
    def test_utilization_matrix_shape_and_values(self):
        cluster, _ = make_cluster(3)
        cluster[1].assign(Job(1, 0.0, 50.0, (0.5, 0.2, 0.1)), 0.0)
        util = cluster.utilization_matrix()
        assert util.shape == (3, 3)
        assert np.allclose(util[1], [0.5, 0.2, 0.1])
        assert np.all(util[0] == 0.0)

    def test_power_state_vector(self):
        cluster, _ = make_cluster(2, initially_on=False)
        cluster[0].assign(Job(1, 0.0, 50.0, (0.5, 0.1, 0.1)), 0.0)
        vec = cluster.power_state_vector()
        # Booting is not "on" (cannot execute yet).
        assert list(vec) == [0.0, 0.0]

    def test_queue_vector(self):
        cluster, _ = make_cluster(2)
        cluster[0].assign(Job(1, 0.0, 50.0, (0.8, 0.1, 0.1)), 0.0)
        cluster[0].assign(Job(2, 0.0, 50.0, (0.8, 0.1, 0.1)), 0.0)
        assert list(cluster.queue_vector()) == [1.0, 0.0]

    def test_utilization_matrix_is_copy(self):
        cluster, _ = make_cluster(2)
        util = cluster.utilization_matrix()
        util[0, 0] = 0.77
        assert cluster[0].used[0] == 0.0
