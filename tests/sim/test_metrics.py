"""Tests for repro.sim.metrics."""

import pytest

from repro.sim.job import Job
from repro.sim.metrics import JOULES_PER_KWH, MetricsCollector, SeriesPoint


def done_job(jid, arrival, start, finish):
    job = Job(jid, arrival, max(finish - start, 1e-9), (0.5, 0.1, 0.1))
    job.start_time = start
    job.finish_time = finish
    return job


class TestSeriesPoint:
    def test_energy_kwh(self):
        p = SeriesPoint(1, 3600.0, 0.0, JOULES_PER_KWH)
        assert p.energy_kwh == pytest.approx(1.0)

    def test_average_power(self):
        p = SeriesPoint(1, 100.0, 0.0, 8700.0)
        assert p.average_power_watts == pytest.approx(87.0)

    def test_average_power_at_time_zero(self):
        assert SeriesPoint(0, 0.0, 0.0, 0.0).average_power_watts == 0.0


class TestCollector:
    def test_latency_accumulation(self):
        m = MetricsCollector(record_every=1)
        m.on_completion(done_job(1, 0.0, 0.0, 10.0), 10.0, 100.0)
        m.on_completion(done_job(2, 5.0, 10.0, 30.0), 30.0, 200.0)
        assert m.n_completed == 2
        assert m.acc_latency == pytest.approx(10.0 + 25.0)
        assert m.mean_latency == pytest.approx(17.5)
        assert m.acc_wait == pytest.approx(0.0 + 5.0)
        assert m.mean_wait == pytest.approx(2.5)
        assert m.max_latency == pytest.approx(25.0)

    def test_series_sampling_interval(self):
        m = MetricsCollector(record_every=3)
        for i in range(7):
            m.on_completion(done_job(i, 0.0, 0.0, 1.0), float(i + 1), float(i))
        # first completion always recorded, then every 3rd.
        assert [p.n_completed for p in m.series] == [1, 3, 6]
        m.close(8.0, 99.0)
        assert m.series[-1].n_completed == 7

    def test_close_idempotent_when_sampled(self):
        m = MetricsCollector(record_every=1)
        m.on_completion(done_job(1, 0.0, 0.0, 1.0), 1.0, 10.0)
        m.close(1.0, 10.0)
        assert [p.n_completed for p in m.series] == [1]

    def test_totals_from_last_point(self):
        m = MetricsCollector(record_every=1)
        m.on_completion(done_job(1, 0.0, 0.0, 100.0), 100.0, JOULES_PER_KWH / 2)
        assert m.total_energy_kwh() == pytest.approx(0.5)
        assert m.average_power_watts() == pytest.approx(JOULES_PER_KWH / 2 / 100.0)

    def test_empty_collector_zeros(self):
        m = MetricsCollector()
        assert m.mean_latency == 0.0
        assert m.total_energy_kwh() == 0.0
        assert m.average_power_watts() == 0.0

    def test_keep_jobs(self):
        m = MetricsCollector(keep_jobs=True)
        job = done_job(1, 0.0, 0.0, 1.0)
        m.on_completion(job, 1.0, 0.0)
        assert m.completed_jobs == [job]

    def test_series_accessors(self):
        m = MetricsCollector(record_every=1)
        m.on_completion(done_job(1, 0.0, 0.0, 10.0), 10.0, JOULES_PER_KWH)
        assert m.latency_series() == [(1, 10.0)]
        assert m.energy_series() == [(1, 1.0)]

    def test_invalid_record_every(self):
        with pytest.raises(ValueError):
            MetricsCollector(record_every=0)

    def test_arrival_counter(self):
        m = MetricsCollector()
        m.on_arrival(done_job(1, 0.0, 0.0, 1.0), 0.0)
        m.on_arrival(done_job(2, 0.0, 0.0, 1.0), 0.0)
        assert m.n_arrived == 2
