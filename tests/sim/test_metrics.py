"""Tests for repro.sim.metrics."""

import pytest

from repro.sim.job import Job
from repro.sim.metrics import JOULES_PER_KWH, MetricsCollector, SeriesPoint


def done_job(jid, arrival, start, finish):
    job = Job(jid, arrival, max(finish - start, 1e-9), (0.5, 0.1, 0.1))
    job.start_time = start
    job.finish_time = finish
    return job


class TestSeriesPoint:
    def test_energy_kwh(self):
        p = SeriesPoint(1, 3600.0, 0.0, JOULES_PER_KWH)
        assert p.energy_kwh == pytest.approx(1.0)

    def test_average_power(self):
        p = SeriesPoint(1, 100.0, 0.0, 8700.0)
        assert p.average_power_watts == pytest.approx(87.0)

    def test_average_power_at_time_zero(self):
        assert SeriesPoint(0, 0.0, 0.0, 0.0).average_power_watts == 0.0


class TestCollector:
    def test_latency_accumulation(self):
        m = MetricsCollector(record_every=1)
        m.on_completion(done_job(1, 0.0, 0.0, 10.0), 10.0, 100.0)
        m.on_completion(done_job(2, 5.0, 10.0, 30.0), 30.0, 200.0)
        assert m.n_completed == 2
        assert m.acc_latency == pytest.approx(10.0 + 25.0)
        assert m.mean_latency == pytest.approx(17.5)
        assert m.acc_wait == pytest.approx(0.0 + 5.0)
        assert m.mean_wait == pytest.approx(2.5)
        assert m.max_latency == pytest.approx(25.0)

    def test_series_sampling_interval(self):
        m = MetricsCollector(record_every=3)
        for i in range(7):
            m.on_completion(done_job(i, 0.0, 0.0, 1.0), float(i + 1), float(i))
        # first completion always recorded, then every 3rd.
        assert [p.n_completed for p in m.series] == [1, 3, 6]
        m.close(8.0, 99.0)
        assert m.series[-1].n_completed == 7

    def test_close_idempotent_when_sampled(self):
        m = MetricsCollector(record_every=1)
        m.on_completion(done_job(1, 0.0, 0.0, 1.0), 1.0, 10.0)
        m.close(1.0, 10.0)
        assert [p.n_completed for p in m.series] == [1]

    def test_close_stamps_final_point_at_close_time(self):
        # Regression: the final point used to carry the last
        # *completion's* timestamp next to energy synced at the *close*
        # time, so average power overstated whenever the run drained
        # idle tail time past the last completion.
        m = MetricsCollector(record_every=3)
        m.on_completion(done_job(1, 0.0, 0.0, 10.0), 10.0, 400.0)
        m.on_completion(done_job(2, 0.0, 10.0, 20.0), 20.0, 900.0)
        m.close(100.0, 5000.0)
        last = m.series[-1]
        assert last.time == 100.0
        assert last.energy_joules == 5000.0
        # 5000 J over 100 s of wall time, not over the 20 s of completions.
        assert m.average_power_watts() == pytest.approx(50.0)

    def test_totals_from_last_point(self):
        m = MetricsCollector(record_every=1)
        m.on_completion(done_job(1, 0.0, 0.0, 100.0), 100.0, JOULES_PER_KWH / 2)
        assert m.total_energy_kwh() == pytest.approx(0.5)
        assert m.average_power_watts() == pytest.approx(JOULES_PER_KWH / 2 / 100.0)

    def test_empty_collector_zeros(self):
        m = MetricsCollector()
        assert m.mean_latency == 0.0
        assert m.total_energy_kwh() == 0.0
        assert m.average_power_watts() == 0.0

    def test_keep_jobs(self):
        m = MetricsCollector(keep_jobs=True)
        job = done_job(1, 0.0, 0.0, 1.0)
        m.on_completion(job, 1.0, 0.0)
        assert m.completed_jobs == [job]

    def test_series_accessors(self):
        m = MetricsCollector(record_every=1)
        m.on_completion(done_job(1, 0.0, 0.0, 10.0), 10.0, JOULES_PER_KWH)
        assert m.latency_series() == [(1, 10.0)]
        assert m.energy_series() == [(1, 1.0)]

    def test_invalid_record_every(self):
        with pytest.raises(ValueError):
            MetricsCollector(record_every=0)

    def test_arrival_counter(self):
        m = MetricsCollector()
        m.on_arrival(done_job(1, 0.0, 0.0, 1.0), 0.0)
        m.on_arrival(done_job(2, 0.0, 0.0, 1.0), 0.0)
        assert m.n_arrived == 2


class TestTariffIntegration:
    def test_flat_tariff_cost_matches_energy(self):
        from repro.sim.power import TariffModel

        m = MetricsCollector(
            record_every=1, tariff=TariffModel(price=0.20, carbon=100.0)
        )
        m.on_completion(done_job(1, 0.0, 0.0, 10.0), 10.0, JOULES_PER_KWH)
        m.on_completion(done_job(2, 0.0, 0.0, 20.0), 20.0, 3 * JOULES_PER_KWH)
        m.close(20.0, 3 * JOULES_PER_KWH)
        assert m.total_cost_usd() == pytest.approx(3 * 0.20)
        assert m.total_co2_kg() == pytest.approx(3 * 100.0 / 1e3)
        assert m.acc_cost_usd == pytest.approx(0.60)

    def test_time_of_use_integrates_piecewise(self):
        from repro.sim.power import TariffModel

        # Price doubles after t = 100 s within a 200 s period.
        tariff = TariffModel(
            price=0.10, price_windows=((100.0, 200.0, 0.20),), period=200.0
        )
        # One kWh drawn uniformly over [50, 150]: half at 0.10, half at 0.20.
        m = MetricsCollector(record_every=1, tariff=tariff)
        m.on_completion(done_job(1, 0.0, 0.0, 50.0), 50.0, 0.0)
        m.on_completion(done_job(2, 0.0, 0.0, 150.0), 150.0, JOULES_PER_KWH)
        assert m.acc_cost_usd == pytest.approx(0.15)

    def test_series_carries_cost_and_co2(self):
        from repro.sim.power import TariffModel

        m = MetricsCollector(
            record_every=1, tariff=TariffModel(price=0.10, carbon=500.0)
        )
        m.on_completion(done_job(1, 0.0, 0.0, 10.0), 10.0, JOULES_PER_KWH)
        m.on_completion(done_job(2, 0.0, 0.0, 20.0), 20.0, 2 * JOULES_PER_KWH)
        m.close(20.0, 2 * JOULES_PER_KWH)
        assert m.cost_series() == [
            (1, pytest.approx(0.10)),
            (2, pytest.approx(0.20)),
        ]
        assert m.co2_series() == [
            (1, pytest.approx(0.5)),
            (2, pytest.approx(1.0)),
        ]

    def test_close_settles_trailing_drain_energy(self):
        from repro.sim.power import TariffModel

        m = MetricsCollector(record_every=1, tariff=TariffModel(price=0.10))
        m.on_completion(done_job(1, 0.0, 0.0, 10.0), 10.0, JOULES_PER_KWH)
        # Idle burn after the last completion still costs money.
        m.close(100.0, 2 * JOULES_PER_KWH)
        assert m.total_cost_usd() == pytest.approx(0.20)

    def test_without_tariff_series_is_zero(self):
        m = MetricsCollector(record_every=1)
        m.on_completion(done_job(1, 0.0, 0.0, 10.0), 10.0, JOULES_PER_KWH)
        m.close(10.0, JOULES_PER_KWH)
        assert m.total_cost_usd() == 0.0
        assert m.total_co2_kg() == 0.0
        assert m.cost_series() == [(1, 0.0)]
