"""Property-based tests (hypothesis) for simulator invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import (
    AlwaysOnPolicy,
    ImmediateSleepPolicy,
    FixedTimeoutPolicy,
    RandomBroker,
    RoundRobinBroker,
)
from repro.sim.engine import build_simulation
from repro.sim.job import Job


@st.composite
def job_traces(draw, max_jobs=25):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    arrivals = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=2000.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    jobs = []
    for i, arrival in enumerate(arrivals):
        duration = draw(st.floats(min_value=1.0, max_value=500.0))
        cpu = draw(st.floats(min_value=0.05, max_value=1.0))
        mem = draw(st.floats(min_value=0.05, max_value=1.0))
        jobs.append(Job(i, arrival, duration, (cpu, mem, 0.1)))
    return jobs


def policies_for(kind):
    if kind == "always-on":
        return AlwaysOnPolicy(), True
    if kind == "immediate":
        return ImmediateSleepPolicy(), False
    return FixedTimeoutPolicy(45.0), False


POLICY_KINDS = ["always-on", "immediate", "fixed"]


@settings(max_examples=30, deadline=None)
@given(trace=job_traces(), kind=st.sampled_from(POLICY_KINDS))
def test_all_jobs_complete_and_latency_bounds(trace, kind):
    policy, on = policies_for(kind)
    engine = build_simulation(3, RoundRobinBroker(), policy, initially_on=on)
    result = engine.run([j.copy() for j in trace])
    assert result.metrics.n_completed == len(trace)


@settings(max_examples=30, deadline=None)
@given(trace=job_traces(), kind=st.sampled_from(POLICY_KINDS))
def test_latency_at_least_duration(trace, kind):
    policy, on = policies_for(kind)
    engine = build_simulation(3, RoundRobinBroker(), policy, initially_on=on)
    jobs = [j.copy() for j in trace]
    engine.run(jobs)
    for job in jobs:
        assert job.latency >= job.duration - 1e-9
        assert job.wait_time >= -1e-9


@settings(max_examples=30, deadline=None)
@given(trace=job_traces(), kind=st.sampled_from(POLICY_KINDS))
def test_energy_non_negative_and_bounded_by_peak(trace, kind):
    policy, on = policies_for(kind)
    engine = build_simulation(3, RoundRobinBroker(), policy, initially_on=on)
    result = engine.run([j.copy() for j in trace])
    assert result.cluster.total_energy() >= 0.0
    # Peak bound: no server can draw more than transition/peak power.
    ceiling = 3 * 145.0 * max(result.final_time, 1e-9)
    assert result.cluster.total_energy() <= ceiling + 1e-6


@settings(max_examples=30, deadline=None)
@given(trace=job_traces())
def test_integrals_non_negative_and_consistent(trace):
    engine = build_simulation(
        3, RandomBroker(np.random.default_rng(0)), ImmediateSleepPolicy()
    )
    result = engine.run([j.copy() for j in trace])
    for server in result.cluster.servers:
        assert server.queue_integral >= -1e-9
        assert server.system_integral >= server.queue_integral - 1e-9
        assert server.util_integral >= -1e-9
        assert server.overload_integral >= -1e-9


@settings(max_examples=30, deadline=None)
@given(trace=job_traces())
def test_system_integral_equals_total_latency(trace):
    # Little's law bookkeeping: the time integral of jobs-in-system equals
    # the sum of job latencies (arrival->completion) exactly.
    engine = build_simulation(
        3, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
    )
    jobs = [j.copy() for j in trace]
    result = engine.run(jobs)
    total_latency = sum(j.latency for j in jobs)
    assert result.cluster.system_integral() == np.float64(
        total_latency
    ) or abs(result.cluster.system_integral() - total_latency) < 1e-6 * max(
        total_latency, 1.0
    )


@settings(max_examples=20, deadline=None)
@given(trace=job_traces(), seed=st.integers(min_value=0, max_value=2**16))
def test_random_broker_in_range(trace, seed):
    engine = build_simulation(
        4, RandomBroker(np.random.default_rng(seed)), ImmediateSleepPolicy()
    )
    jobs = [j.copy() for j in trace]
    engine.run(jobs)
    assert all(0 <= j.server_id < 4 for j in jobs)


@settings(max_examples=20, deadline=None)
@given(trace=job_traces())
def test_fcfs_start_order_per_server(trace):
    # On each server, start times follow assignment order (strict FCFS).
    engine = build_simulation(
        2, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
    )
    jobs = [j.copy() for j in trace]
    engine.run(jobs)
    per_server: dict[int, list[Job]] = {}
    for job in jobs:  # trace order == assignment order per server
        per_server.setdefault(job.server_id, []).append(job)
    for assigned in per_server.values():
        starts = [j.start_time for j in assigned]
        assert all(a <= b + 1e-9 for a, b in zip(starts, starts[1:]))
