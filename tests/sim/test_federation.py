"""Tests for repro.sim.federation: sites, shared clock, merged feeds."""

import pytest

from repro.core.baselines import AlwaysOnPolicy, RoundRobinBroker
from repro.sim.cluster import Cluster
from repro.sim.engine import build_simulation
from repro.sim.events import EventQueue
from repro.sim.federation import (
    FederationEngine,
    Site,
    build_federation,
    merge_site_series,
)
from repro.sim.interfaces import FederationBroker
from repro.sim.job import Job
from repro.sim.power import PowerModel, TariffModel


def jobs_burst(n, spacing=10.0, duration=50.0, cpu=0.3, offset=0.0, start_id=0):
    return [
        Job(start_id + i, offset + i * spacing, duration, (cpu, 0.1, 0.1))
        for i in range(n)
    ]


def two_sites(broker=None, tariffs=(None, None)):
    return build_federation(
        [
            dict(
                name="a",
                num_servers=2,
                broker=RoundRobinBroker(),
                policies=AlwaysOnPolicy(),
                initially_on=True,
                tariff=tariffs[0],
            ),
            dict(
                name="b",
                num_servers=2,
                broker=RoundRobinBroker(),
                policies=AlwaysOnPolicy(),
                initially_on=True,
                tariff=tariffs[1],
            ),
        ],
        broker=broker,
    )


class PickSite(FederationBroker):
    """Routes every job to one fixed site."""

    def __init__(self, target):
        self.target = target

    def select_site(self, job, sites, home, now):
        return self.target


class TestFederationEngine:
    def test_home_routing_completes_all_streams(self):
        engine = two_sites()
        result = engine.run([jobs_burst(6), jobs_burst(4, offset=1.0, start_id=100)])
        assert result.n_completed == 10
        assert [s.metrics.n_completed for s in result.sites] == [6, 4]

    def test_broker_can_move_jobs_across_sites(self):
        engine = two_sites(broker=PickSite(1))
        result = engine.run([jobs_burst(5), jobs_burst(5, offset=1.0, start_id=50)])
        assert result.sites[0].metrics.n_completed == 0
        assert result.sites[1].metrics.n_completed == 10

    def test_out_of_range_site_raises(self):
        engine = two_sites(broker=PickSite(7))
        with pytest.raises(ValueError, match="outside"):
            engine.run([jobs_burst(1), []])

    def test_stream_count_must_match_sites(self):
        engine = two_sites()
        with pytest.raises(ValueError, match="streams"):
            engine.run([jobs_burst(2)])

    def test_unsorted_stream_raises(self):
        engine = two_sites()
        bad = [
            Job(0, 100.0, 10.0, (0.1, 0.1, 0.1)),
            Job(1, 50.0, 10.0, (0.1, 0.1, 0.1)),
        ]
        with pytest.raises(ValueError, match="sorted"):
            engine.run([bad, []])

    def test_sites_must_share_one_event_queue(self):
        def lone_site(name):
            events = EventQueue()
            cluster = Cluster(
                num_servers=1,
                power_model=PowerModel(),
                events=events,
                policies=AlwaysOnPolicy(),
                initially_on=True,
            )
            return Site(name=name, cluster=cluster, broker=RoundRobinBroker())

        with pytest.raises(ValueError, match="event clock"):
            FederationEngine([lone_site("a"), lone_site("b")])

    def test_needs_at_least_one_site(self):
        with pytest.raises(ValueError, match="at least one site"):
            FederationEngine([])

    def test_max_jobs_is_fleet_wide(self):
        engine = two_sites()
        result = engine.run(
            [jobs_burst(5), jobs_burst(5, offset=1.0, start_id=50)], max_jobs=4
        )
        assert result.n_completed == 4

    def test_same_time_arrivals_prefer_lower_site_index(self):
        # Both streams emit a job at t=0; site 0's must be handled first
        # (deterministic tie-break), observable through the metrics
        # arrival counters after one event.
        engine = two_sites()
        engine.run([jobs_burst(1), jobs_burst(1, start_id=9)], max_events=1)
        assert engine.sites[0].metrics.n_arrived == 1
        assert engine.sites[1].metrics.n_arrived == 0

    def test_per_site_tariffs_split_the_bill(self):
        cheap = TariffModel(price=0.01, carbon=100.0)
        dear = TariffModel(price=1.00, carbon=900.0)
        result = two_sites(tariffs=(cheap, dear)).run(
            [jobs_burst(4), jobs_burst(4, offset=1.0, start_id=40)]
        )
        a, b = result.sites
        # Similar energy, wildly different bills.
        assert a.metrics.total_cost_usd() < b.metrics.total_cost_usd() / 10
        assert result.total_cost_usd == pytest.approx(
            a.metrics.total_cost_usd() + b.metrics.total_cost_usd()
        )
        assert result.total_co2_kg == pytest.approx(
            a.metrics.total_co2_kg() + b.metrics.total_co2_kg()
        )


class TestMergedSeries:
    def test_single_site_series_passes_through(self):
        engine = two_sites()
        streams = [jobs_burst(6), []]
        result = engine.run(streams)
        solo = merge_site_series([result.sites[0]])
        assert solo == list(result.sites[0].metrics.series)

    def test_fleet_series_last_point_matches_totals(self):
        engine = two_sites()
        result = engine.run([jobs_burst(6), jobs_burst(4, offset=1.0, start_id=60)])
        last = result.fleet_series[-1]
        assert last.n_completed == result.n_completed
        assert last.acc_latency == pytest.approx(result.accumulated_latency)
        assert last.energy_kwh == pytest.approx(result.total_energy_kwh)

    def test_fleet_series_is_monotone(self):
        engine = two_sites()
        result = engine.run([jobs_burst(6), jobs_burst(6, offset=3.0, start_id=60)])
        points = result.fleet_series
        assert all(
            a.n_completed <= b.n_completed and a.time <= b.time
            for a, b in zip(points, points[1:])
        )


class TestClusterEngineDelegation:
    def test_cluster_engine_is_a_federation_of_one(self):
        engine = build_simulation(
            2, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True
        )
        assert len(engine._federation.sites) == 1
        assert engine._federation.broker is None
        assert engine._federation.sites[0].metrics is engine.metrics

    def test_explicit_single_site_matches_cluster_engine(self):
        jobs = jobs_burst(12, spacing=30.0)
        cluster_engine = build_simulation(
            3, RoundRobinBroker(), AlwaysOnPolicy(), initially_on=True,
            tariff=TariffModel(),
        )
        a = cluster_engine.run([j.copy() for j in jobs])
        fed = build_federation(
            [
                dict(
                    name="solo",
                    num_servers=3,
                    broker=RoundRobinBroker(),
                    policies=AlwaysOnPolicy(),
                    initially_on=True,
                    tariff=TariffModel(),
                )
            ]
        )
        b = fed.run([[j.copy() for j in jobs]])
        assert a.metrics.n_completed == b.n_completed
        assert a.total_energy_kwh == b.total_energy_kwh
        assert a.accumulated_latency == b.accumulated_latency
        assert a.metrics.total_cost_usd() == b.total_cost_usd
        assert a.metrics.series == b.sites[0].metrics.series
        assert a.final_time == b.final_time


class TestBuildFederation:
    def test_unknown_site_argument_rejected(self):
        with pytest.raises(ValueError, match="unknown site arguments"):
            build_federation(
                [dict(num_servers=1, broker=RoundRobinBroker(),
                      policies=AlwaysOnPolicy(), bogus=1)]
            )

    def test_metrics_carry_site_tariff(self):
        tariff = TariffModel(price=0.2)
        engine = build_federation(
            [dict(num_servers=1, broker=RoundRobinBroker(),
                  policies=AlwaysOnPolicy(), tariff=tariff)]
        )
        assert engine.sites[0].metrics.tariff is tariff
        assert engine.sites[0].tariff is tariff
