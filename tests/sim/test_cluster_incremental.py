"""Incremental cluster-ledger state vs recomputation from the servers.

The cluster maintains contiguous per-server observable and time-integral
arrays (:class:`~repro.sim.ledger.ClusterLedger`) updated incrementally
at every assign / start / finish / sleep / wake / churn change point.
These tests drive a churn-heavy simulation and then assert the arrays
agree with values recomputed the slow way — from the per-server Python
objects — so any missed refresh point shows up as drift.
"""

import numpy as np
import pytest

from repro.core.baselines import FixedTimeoutPolicy, RoundRobinBroker
from repro.sim.churn import CapacityEvent
from repro.sim.engine import build_simulation
from repro.sim.server import PowerState
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace


def churny_engine(n_servers=6, n_jobs=400, seed=5):
    """A run with sleep/wake churn (short DPM timeout) and capacity churn."""
    config = SyntheticTraceConfig(n_jobs=n_jobs, horizon=n_jobs * 30.0)
    jobs = generate_trace(config, seed=seed)
    horizon = config.horizon
    events = tuple(
        CapacityEvent(time=frac * horizon, server_id=sid, duration=0.07 * horizon,
                      fraction=cap)
        for frac, sid, cap in [(0.1, 0, 0.0), (0.25, 1, 0.4), (0.5, 2, 0.0),
                               (0.6, 0, 0.5), (0.8, 3, 0.0)]
    )
    engine = build_simulation(
        num_servers=n_servers,
        broker=RoundRobinBroker(),
        policies=FixedTimeoutPolicy(45.0),
        capacity_events=events,
        initially_on=False,
    )
    return engine, jobs


def recomputed_observables(cluster):
    """The pre-ledger way: scan every server object."""
    util = np.array([s.used.copy() for s in cluster.servers])
    on = np.array([1.0 if s.state.is_on else 0.0 for s in cluster.servers])
    queue = np.array([float(s.queue_length) for s in cluster.servers])
    in_system = np.array([float(s.jobs_in_system) for s in cluster.servers])
    power = np.array([s.current_power() for s in cluster.servers])
    cpu = np.array(
        [s.cpu_utilization if s.state is PowerState.ACTIVE else 0.0
         for s in cluster.servers]
    )
    excess = np.maximum(0.0, cpu - np.array([s.overload_threshold
                                             for s in cluster.servers]))
    return util, on, queue, in_system, power, cpu, excess


def assert_ledger_consistent(cluster):
    ledger = cluster.ledger
    util, on, queue, in_system, power, cpu, excess = recomputed_observables(cluster)
    assert np.array_equal(ledger.util, util)
    assert np.array_equal(ledger.on, on)
    assert np.array_equal(ledger.queue, queue)
    assert np.array_equal(ledger.in_system, in_system)
    assert np.array_equal(ledger.power, power)
    assert np.array_equal(ledger.active_cpu, cpu)
    assert np.array_equal(ledger.overload_excess, excess)


class TestIncrementalObservables:
    def test_consistent_after_churn_heavy_run(self):
        engine, jobs = churny_engine()
        engine.run(jobs)
        assert_ledger_consistent(engine.cluster)

    def test_consistent_at_every_decision_epoch(self):
        """Check mid-run too, where drift would actually mislead the DRL
        agent — not just at the drained final state."""
        engine, jobs = churny_engine(n_jobs=150)

        class CheckingBroker(RoundRobinBroker):
            def select_server(self, job, cluster, now):
                assert_ledger_consistent(cluster)
                return super().select_server(job, cluster, now)

        engine.broker = CheckingBroker()
        engine.run(jobs)

    def test_aggregates_match_per_server_sums(self):
        engine, jobs = churny_engine()
        engine.run(jobs)
        cluster = engine.cluster
        servers = cluster.servers
        assert cluster.total_energy() == pytest.approx(
            sum(s.energy_joules for s in servers), rel=1e-12)
        assert cluster.system_integral() == pytest.approx(
            sum(s.system_integral for s in servers), rel=1e-12)
        assert cluster.overload_integral() == pytest.approx(
            sum(s.overload_integral for s in servers), abs=1e-12)
        assert cluster.jobs_in_system() == sum(s.jobs_in_system for s in servers)
        assert cluster.num_active_servers() == sum(
            1 for s in servers if s.state.is_on)

    def test_energy_conservation_against_average_power(self):
        """Independent cross-check: energy integral equals the power trace
        implied by completed metrics (sanity, not bit-level)."""
        engine, jobs = churny_engine(n_jobs=200)
        result = engine.run(jobs)
        assert result.total_energy_kwh > 0.0
        assert result.metrics.n_completed == len(jobs)


class TestEncoderUsesViews:
    def test_encode_matches_copy_path(self):
        from repro.core.state import StateEncoder
        from repro.sim.job import Job

        engine, jobs = churny_engine(n_servers=6, n_jobs=120)
        engine.run(jobs)
        cluster = engine.cluster
        enc = StateEncoder(6, num_groups=3)
        probe = Job(10_000, 0.0, 600.0, (0.2, 0.1, 0.1))
        state = enc.encode(cluster, probe)
        # Rebuild the state the pre-ledger way and compare exactly.
        util = cluster.utilization_matrix()[:, :3]
        on = cluster.power_state_vector()[:, None]
        queue = np.minimum(cluster.queue_vector() / enc.queue_scale, 1.0)[:, None]
        expected = np.concatenate(
            [np.concatenate([util, on, queue], axis=1).reshape(-1),
             enc.encode_job(probe)]
        )
        assert np.array_equal(state, expected)

    def test_encode_does_not_mutate_cluster(self):
        engine, jobs = churny_engine(n_servers=6, n_jobs=60)
        engine.run(jobs)
        from repro.core.state import StateEncoder
        from repro.sim.job import Job

        cluster = engine.cluster
        before = cluster.ledger.util.copy()
        enc = StateEncoder(6, num_groups=2)
        enc.encode(cluster, Job(9_999, 0.0, 60.0, (0.1, 0.1, 0.1)))
        assert np.array_equal(cluster.ledger.util, before)
