"""Tests for repro.rl.smdp: Eqn. (2) math and tabular convergence."""

import math

import numpy as np
import pytest

from repro.rl.smdp import SMDPQLearner, smdp_discounted_reward, smdp_target


class TestDiscountedReward:
    def test_formula(self):
        r, tau, beta = 2.0, 3.0, 0.5
        expected = (1 - math.exp(-beta * tau)) / beta * r
        assert smdp_discounted_reward(r, tau, beta) == pytest.approx(expected)

    def test_beta_zero_degenerates_to_r_tau(self):
        assert smdp_discounted_reward(2.0, 3.0, 0.0) == pytest.approx(6.0)

    def test_small_beta_close_to_r_tau(self):
        assert smdp_discounted_reward(2.0, 3.0, 1e-9) == pytest.approx(6.0, rel=1e-6)

    def test_long_sojourn_saturates_at_r_over_beta(self):
        assert smdp_discounted_reward(2.0, 1e9, 0.5) == pytest.approx(4.0)

    def test_zero_tau_zero_reward(self):
        assert smdp_discounted_reward(5.0, 0.0, 0.5) == 0.0

    def test_negative_tau_raises(self):
        with pytest.raises(ValueError):
            smdp_discounted_reward(1.0, -1.0, 0.5)

    def test_negative_beta_raises(self):
        with pytest.raises(ValueError):
            smdp_discounted_reward(1.0, 1.0, -0.5)


class TestTarget:
    def test_combines_reward_and_tail(self):
        target = smdp_target(1.0, 2.0, 0.5, next_max_q=10.0)
        expected = (1 - math.exp(-1.0)) / 0.5 * 1.0 + math.exp(-1.0) * 10.0
        assert target == pytest.approx(expected)

    def test_beta_zero_undiscounted(self):
        assert smdp_target(1.0, 2.0, 0.0, 10.0) == pytest.approx(12.0)


class TestLearner:
    def test_q_values_created_on_demand(self, rng):
        learner = SMDPQLearner(rng=rng, initial_q=0.5)
        q = learner.q_values("s", 3)
        assert q.shape == (3,)
        assert np.all(q == 0.5)
        assert learner.n_states == 1

    def test_action_count_conflict_raises(self, rng):
        learner = SMDPQLearner(rng=rng)
        learner.q_values("s", 3)
        with pytest.raises(ValueError, match="actions"):
            learner.q_values("s", 4)

    def test_update_moves_toward_target(self, rng):
        learner = SMDPQLearner(beta=0.5, alpha=0.5, rng=rng)
        new_q = learner.update("s", 0, reward_rate=-1.0, tau=2.0, next_state="s2",
                               n_actions=2, next_n_actions=2)
        target = smdp_target(-1.0, 2.0, 0.5, 0.0)
        assert new_q == pytest.approx(0.5 * target)
        assert learner.updates == 1

    def test_update_invalid_action_raises(self, rng):
        learner = SMDPQLearner(rng=rng)
        with pytest.raises(ValueError):
            learner.update("s", 5, 0.0, 1.0, "s2", 2, 2)

    def test_greedy_action(self, rng):
        learner = SMDPQLearner(rng=rng)
        learner.q_values("s", 3)[1] = 10.0
        assert learner.greedy_action("s", 3) == 1

    def test_epsilon_annealing(self, rng):
        learner = SMDPQLearner(
            epsilon=1.0, epsilon_decay=0.5, epsilon_floor=0.2, rng=rng
        )
        learner.select_action("s", 2)
        assert learner.epsilon == 0.5
        for _ in range(10):
            learner.select_action("s", 2)
        assert learner.epsilon == 0.2

    def test_table_is_copy(self, rng):
        learner = SMDPQLearner(rng=rng)
        learner.q_values("s", 2)
        table = learner.table()
        table["s"][0] = 99.0
        assert learner.q_values("s", 2)[0] == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beta": -1.0},
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"epsilon": 2.0},
            {"epsilon_decay": 0.0},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            SMDPQLearner(**kwargs)

    def test_converges_on_two_state_smdp(self):
        """A tiny SMDP with a known optimal action.

        State A, two actions: action 0 yields reward rate -1 for tau=1;
        action 1 yields reward rate -5 for tau=1. Both return to A.
        The learner must prefer action 0, and Q must approach the fixed
        point q* = r_disc / (1 - e^{-beta}).
        """
        rng = np.random.default_rng(3)
        learner = SMDPQLearner(beta=0.5, alpha=0.1, epsilon=0.3, rng=rng)
        rates = {0: -1.0, 1: -5.0}
        for _ in range(3000):
            action = learner.select_action("A", 2)
            learner.update("A", action, rates[action], 1.0, "A", 2, 2)
        q = learner.q_values("A", 2)
        assert learner.greedy_action("A", 2) == 0
        disc = smdp_discounted_reward(-1.0, 1.0, 0.5)
        fixed_point = disc / (1 - math.exp(-0.5))
        assert q[0] == pytest.approx(fixed_point, rel=0.15)

    def test_learns_timeout_style_tradeoff(self):
        """A DPM-flavoured SMDP: sleep-now pays a wake penalty later,
        stay-awake pays idle power now. With a long gap, sleeping wins.
        """
        rng = np.random.default_rng(5)
        learner = SMDPQLearner(beta=0.01, alpha=0.2, epsilon=0.3, rng=rng)
        gap = 300.0
        for _ in range(2000):
            action = learner.select_action("idle", 2)
            if action == 0:  # sleep: tiny transition energy, no idle burn
                learner.update("idle", 0, -60 * 145 / gap, gap, "idle", 2, 2)
            else:  # stay awake: idle power the whole gap
                learner.update("idle", 1, -87.0, gap, "idle", 2, 2)
        assert learner.greedy_action("idle", 2) == 0
