"""Tests for repro.rl.replay."""

import numpy as np
import pytest

from repro.rl.replay import ReplayMemory, Transition


def tr(i):
    return Transition(state=i, action=0, reward=float(i), next_state=i + 1, tau=1.0)


class TestTransition:
    def test_fields(self):
        t = Transition("s", 2, -1.5, "s2", 3.0)
        assert t.action == 2 and t.tau == 3.0

    def test_negative_tau_raises(self):
        with pytest.raises(ValueError):
            Transition("s", 0, 0.0, "s2", -1.0)

    def test_frozen(self):
        t = tr(0)
        with pytest.raises(AttributeError):
            t.reward = 5.0


class TestReplayMemory:
    def test_push_and_len(self):
        mem = ReplayMemory(10)
        for i in range(5):
            mem.push(tr(i))
        assert len(mem) == 5
        assert not mem.full

    def test_capacity_evicts_oldest(self):
        mem = ReplayMemory(3)
        for i in range(5):
            mem.push(tr(i))
        assert len(mem) == 3
        states = [t.state for t in mem]
        assert states == [2, 3, 4]
        assert mem.full

    def test_sample_size(self, rng):
        mem = ReplayMemory(10)
        for i in range(10):
            mem.push(tr(i))
        batch = mem.sample(4, rng)
        assert len(batch) == 4
        assert all(isinstance(t, Transition) for t in batch)

    def test_sample_without_replacement_when_possible(self, rng):
        mem = ReplayMemory(10)
        for i in range(10):
            mem.push(tr(i))
        batch = mem.sample(10, rng)
        assert len({t.state for t in batch}) == 10

    def test_oversample_with_replacement(self, rng):
        mem = ReplayMemory(10)
        mem.push(tr(0))
        batch = mem.sample(5, rng)
        assert len(batch) == 5

    def test_sample_empty_raises(self, rng):
        with pytest.raises(ValueError):
            ReplayMemory(5).sample(1, rng)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayMemory(0)

    def test_clear(self, rng):
        mem = ReplayMemory(5)
        mem.push(tr(0))
        mem.clear()
        assert len(mem) == 0

    def test_sampled_transitions_survive_eviction(self, rng):
        # Ring-buffer regression guard: a sampled Transition must not
        # alias the live buffer, or later pushes would rewrite it.
        mem = ReplayMemory(2)
        mem.push(Transition(np.array([1.0]), 0, 0.0, np.array([1.5]), 1.0))
        mem.push(Transition(np.array([2.0]), 0, 0.0, np.array([2.5]), 1.0))
        held = mem.sample(2, rng)
        mem.push(Transition(np.array([99.0]), 0, 0.0, np.array([99.5]), 1.0))
        states = sorted(float(t.state[0]) for t in held)
        assert states == [1.0, 2.0]

    def test_sampling_is_uniform_ish(self):
        rng = np.random.default_rng(0)
        mem = ReplayMemory(4)
        for i in range(4):
            mem.push(tr(i))
        counts = np.zeros(4)
        for _ in range(500):
            for t in mem.sample(2, rng):
                counts[t.state] += 1
        assert counts.min() > 0.6 * counts.max()
