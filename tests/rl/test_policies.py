"""Tests for repro.rl.policies."""

import numpy as np
import pytest

from repro.rl.policies import (
    DecayingEpsilonGreedy,
    EpsilonGreedy,
    epsilon_greedy_choice,
)


class TestEpsilonGreedyChoice:
    def test_greedy_picks_argmax(self, rng):
        q = np.array([0.1, 0.9, 0.3])
        assert epsilon_greedy_choice(q, 0.0, rng) == 1

    def test_fully_random_covers_all_actions(self, rng):
        q = np.array([10.0, 0.0, 0.0])
        picks = {epsilon_greedy_choice(q, 1.0, rng) for _ in range(200)}
        assert picks == {0, 1, 2}

    def test_ties_broken_randomly(self, rng):
        q = np.zeros(4)
        picks = {epsilon_greedy_choice(q, 0.0, rng) for _ in range(200)}
        assert len(picks) == 4

    def test_exploration_rate_approximate(self):
        rng = np.random.default_rng(0)
        q = np.array([1.0, 0.0])
        n = 4000
        non_greedy = sum(
            epsilon_greedy_choice(q, 0.5, rng) == 1 for _ in range(n)
        )
        # epsilon=0.5 with 2 actions -> P(non-greedy) = 0.25.
        assert 0.2 < non_greedy / n < 0.3

    def test_empty_q_raises(self, rng):
        with pytest.raises(ValueError):
            epsilon_greedy_choice(np.array([]), 0.1, rng)

    def test_bad_epsilon_raises(self, rng):
        with pytest.raises(ValueError):
            epsilon_greedy_choice(np.zeros(2), 1.5, rng)

    def test_matrix_q_raises(self, rng):
        with pytest.raises(ValueError):
            epsilon_greedy_choice(np.zeros((2, 2)), 0.1, rng)


class TestEpsilonGreedy:
    def test_select(self, rng):
        policy = EpsilonGreedy(0.0, rng)
        assert policy.select(np.array([0.0, 5.0])) == 1

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            EpsilonGreedy(-0.1)


class TestDecayingEpsilonGreedy:
    def test_decays_per_selection(self, rng):
        policy = DecayingEpsilonGreedy(start=1.0, floor=0.1, decay=0.5, rng=rng)
        policy.select(np.zeros(3))
        assert policy.epsilon == 0.5
        policy.select(np.zeros(3))
        assert policy.epsilon == 0.25

    def test_floor_respected(self, rng):
        policy = DecayingEpsilonGreedy(start=1.0, floor=0.2, decay=0.1, rng=rng)
        for _ in range(10):
            policy.select(np.zeros(2))
        assert policy.epsilon == 0.2

    def test_invalid_ordering(self):
        with pytest.raises(ValueError):
            DecayingEpsilonGreedy(start=0.1, floor=0.5)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            DecayingEpsilonGreedy(decay=0.0)
