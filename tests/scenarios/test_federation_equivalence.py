"""Federation-of-one equivalence: the refactor's safety net.

A federated cell with a single site must be the *identical experiment*
to the single-cluster cell — bit-identical metrics, not approximately
equal — across builtin scenarios (synthetic, tariffed, and trace-replay
workloads) and across systems including the DRL global tier. This is
what licenses routing everything through the federation engine.
"""

from dataclasses import replace

import pytest

from repro.scenarios import registry
from repro.scenarios.orchestrator import run_cell
from repro.scenarios.specs import SiteSpec

#: Metrics that must match exactly (totals, intensive stats, and every
#: sampled series point).
EXACT_KEYS = (
    "n_jobs_offered",
    "n_jobs_completed",
    "num_servers",
    "energy_kwh",
    "acc_latency_s",
    "mean_latency_s",
    "average_power_w",
    "energy_per_job_wh",
    "final_time_s",
    "cost_usd",
    "co2_kg",
    "latency_series",
    "energy_series",
    "cost_series",
    "co2_series",
)

#: >= 3 builtin scenarios covering synthetic (paper-default), tariffed
#: synthetic (tou-price-shift), and trace replay (google-replay).
SCENARIOS = ("paper-default", "tou-price-shift", "google-replay")

#: A static baseline, a sleeping baseline, and the DRL global tier
#: (untrained here — online learning still runs through the evaluation,
#: exercising the seeded RNG path end to end).
SYSTEMS = ("round-robin", "packing", "drl-only")


def federation_of_one(spec):
    """The spec as a single-site federation (same fleet, same tariff)."""
    return replace(
        spec,
        name=f"{spec.name}-as-federation",
        sites=(SiteSpec("solo", fleet=spec.fleet, tariff=spec.tariff),),
    )


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("system", SYSTEMS)
def test_single_site_federation_is_bit_identical(scenario, system):
    spec = registry.get(scenario)
    kwargs = dict(n_jobs=120, seed=3, pretrain=False, online_epochs=0)
    single = run_cell(spec, system, **kwargs)
    federated = run_cell(federation_of_one(spec), system, **kwargs)
    for key in EXACT_KEYS:
        assert single[key] == federated[key], key
    # The federated result additionally breaks the same numbers out
    # per site — for one site, the breakdown IS the fleet.
    (site,) = federated["sites"]
    assert site["energy_kwh"] == single["energy_kwh"]
    assert site["cost_usd"] == single["cost_usd"]
    assert site["co2_kg"] == single["co2_kg"]
    assert site["latency_series"] == single["latency_series"]


def test_single_site_federation_traces_match_single_cluster():
    # The trace builder itself must hand a one-site federation the exact
    # single-cluster streams (same jobs, same training segments).
    spec = registry.get("paper-default")
    fed = federation_of_one(spec)
    eval_jobs, segments = spec.build_traces(200, seed=7)
    eval_streams, train_streams = fed.build_site_traces(200, seed=7)
    assert eval_streams == [eval_jobs]
    assert train_streams == [[segment] for segment in segments]


def test_warm_started_single_site_federation_stays_identical(tmp_path):
    # Warm starting goes through a different construction path
    # (checkpoint restore) on both sides; equivalence must survive it.
    from repro.scenarios.checkpoints import CheckpointStore, ensure_checkpoint

    spec = registry.get("paper-default")
    fed = federation_of_one(spec)
    kwargs = dict(n_jobs=100, seed=1, online_epochs=1)
    single_ckpt = ensure_checkpoint(
        CheckpointStore(tmp_path / "single"), spec, n_jobs=100, seed=1,
        online_epochs=1, with_predictor=False,
    )
    fed_ckpt = ensure_checkpoint(
        CheckpointStore(tmp_path / "fed"), fed, n_jobs=100, seed=1,
        online_epochs=1, with_predictor=False,
    )
    single = run_cell(spec, "drl-only", checkpoint=single_ckpt, **kwargs)
    federated = run_cell(fed, "drl-only", checkpoint=fed_ckpt, **kwargs)
    for key in EXACT_KEYS:
        assert single[key] == federated[key], key
