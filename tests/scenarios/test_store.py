"""Content-keyed result store semantics."""

import json

from repro.scenarios.store import (
    QUARANTINE_FILE,
    ResultStore,
    append_quarantine,
    canonical_json,
    content_key,
    read_quarantine,
)


class TestContentKey:
    def test_stable_across_key_order(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert content_key({"a": 1}) != content_key({"a": 2})

    def test_canonical_json_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        request = {"scenario": "x", "seed": 0}
        key = content_key(request)
        assert store.get(key) is None
        store.put(key, request, {"energy_kwh": 1.5})
        record = store.get(key)
        assert record["result"] == {"energy_kwh": 1.5}
        assert record["request"] == request
        assert len(store) == 1

    def test_changed_request_misses(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(content_key({"seed": 0}), {"seed": 0}, {"v": 1})
        assert store.get(content_key({"seed": 1})) is None

    def test_corrupt_entry_is_a_miss_and_is_deleted(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = content_key({"seed": 0})
        store.put(key, {"seed": 0}, {"v": 1})
        store.path_for(key).write_text("{not json")
        assert store.get(key) is None
        # The corrupt record is gone: it can't shadow a future recompute.
        assert not store.path_for(key).exists()
        assert len(store) == 0

    def test_truncated_record_from_killed_worker_is_healed(self, tmp_path):
        """Regression: a mid-write kill used to leave a record that made
        every subsequent sweep re-raise instead of recomputing."""
        store = ResultStore(tmp_path / "cache")
        key = content_key({"seed": 1})
        path = store.put(key, {"seed": 1}, {"v": 1})
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # truncate, as SIGKILL would
        assert store.get(key) is None
        assert not path.exists()
        # The slot works again after recomputation.
        store.put(key, {"seed": 1}, {"v": 2})
        assert store.get(key)["result"] == {"v": 2}

    def test_non_dict_record_is_a_miss_and_is_deleted(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = content_key({"seed": 2})
        store.put(key, {"seed": 2}, {"v": 1})
        store.path_for(key).write_text('["valid json", "wrong shape"]')
        assert store.get(key) is None
        assert not store.path_for(key).exists()

    def test_record_missing_result_is_a_miss_and_is_deleted(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = content_key({"seed": 3})
        store.put(key, {"seed": 3}, {"v": 1})
        store.path_for(key).write_text('{"request": {"seed": 3}}')
        assert store.get(key) is None
        assert not store.path_for(key).exists()

    def test_overwrite_and_clear(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = content_key({"seed": 0})
        store.put(key, {"seed": 0}, {"v": 1})
        store.put(key, {"seed": 0}, {"v": 2})
        assert store.get(key)["result"] == {"v": 2}
        assert len(store) == 1
        assert store.clear() == 1
        assert len(store) == 0
        assert store.get(key) is None

    def test_records_are_valid_json_files(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        key = content_key({"seed": 3})
        path = store.put(key, {"seed": 3}, {"v": 1})
        with path.open() as fh:
            record = json.load(fh)
        assert record["schema"] >= 1


class TestQuarantineJournal:
    def test_append_and_read_round_trip(self, tmp_path):
        records = [
            {"key": "abc", "system": "drl-only", "error": "boom"},
            {"key": "def", "system": "packing", "error": "timeout"},
        ]
        for record in records:
            append_quarantine(tmp_path, record)
        assert read_quarantine(tmp_path) == records

    def test_missing_journal_is_empty(self, tmp_path):
        assert read_quarantine(tmp_path) == []

    def test_corrupt_trailing_line_is_skipped_and_healed(self, tmp_path):
        """Regression: a SIGKILL mid-append leaves a torn last line; reads
        must skip it and rewrite the journal so it never trips again."""
        good = {"key": "abc", "system": "drl-only", "error": "boom"}
        append_quarantine(tmp_path, good)
        path = tmp_path / QUARANTINE_FILE
        with path.open("a") as fh:
            fh.write('{"key": "def", "sys')  # torn mid-write
        assert read_quarantine(tmp_path) == [good]
        # The journal was atomically rewritten without the torn line.
        assert path.read_text() == json.dumps(
            good, sort_keys=True, separators=(",", ":")
        ) + "\n"
        assert read_quarantine(tmp_path) == [good]

    def test_non_dict_lines_are_dropped(self, tmp_path):
        good = {"key": "abc"}
        path = tmp_path / QUARANTINE_FILE
        path.write_text('["a", "list"]\n' + json.dumps(good) + "\n\n")
        assert read_quarantine(tmp_path) == [good]

    def test_wholly_corrupt_journal_reads_empty(self, tmp_path):
        path = tmp_path / QUARANTINE_FILE
        path.write_text("not json at all")
        assert read_quarantine(tmp_path) == []
        assert path.read_text() == ""
