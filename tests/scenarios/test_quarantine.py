"""Sweep resilience: retries, quarantine, timeouts, pool respawn."""

import os
import signal
import time

import pytest

import repro.scenarios.orchestrator as orchestrator
from repro.scenarios.orchestrator import CHAOS_POISON_ENV, sweep
from repro.scenarios.specs import (
    FleetSpec,
    ScenarioSpec,
    ServerClassSpec,
    WorkloadSpec,
)
from repro.scenarios.store import QUARANTINE_FILE, ResultStore, read_quarantine

TINY = ScenarioSpec(
    name="tiny-quarantine",
    description="4-server quarantine scenario",
    fleet=FleetSpec(classes=(ServerClassSpec("standard", 4),)),
    workload=WorkloadSpec(n_train_segments=1),
)


def base_kwargs(store, **extra):
    kwargs = dict(
        scenarios=[TINY],
        systems=("round-robin", "packing", "least-loaded"),
        seeds=(0,),
        n_jobs=60,
        workers=1,
        store=store,
        cell_retries=0,
    )
    kwargs.update(extra)
    return kwargs


class TestQuarantine:
    def test_failing_cell_is_quarantined_and_sweep_continues(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path / "cache")
        real = orchestrator.run_cell

        def flaky(scenario, system, **kw):
            if system == "packing":
                raise RuntimeError("poisoned cell")
            return real(scenario, system, **kw)

        monkeypatch.setattr(orchestrator, "run_cell", flaky)
        report = sweep(**base_kwargs(store))
        assert report.n_quarantined == 1
        record = report.quarantined[0]
        assert record["system"] == "packing"
        assert record["stage"] == "evaluate"
        assert "RuntimeError" in record["error"]
        # The other two cells completed and journaled; the quarantined
        # slot is None and aggregation skips it.
        assert sum(r is not None for r in report.results) == 2
        assert len(store) == 2
        assert {row["system"] for row in report.rows()} == {
            "round-robin",
            "least-loaded",
        }
        # The structured journal landed beside the cell records.
        journaled = read_quarantine(store.root)
        assert journaled == [record]

    def test_quarantined_cell_recomputes_on_next_sweep(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path / "cache")
        real = orchestrator.run_cell

        def flaky(scenario, system, **kw):
            if system == "packing":
                raise RuntimeError("transient")
            return real(scenario, system, **kw)

        monkeypatch.setattr(orchestrator, "run_cell", flaky)
        sweep(**base_kwargs(store))
        monkeypatch.setattr(orchestrator, "run_cell", real)
        report = sweep(**base_kwargs(store))
        assert report.n_quarantined == 0
        assert (report.n_cached, report.n_computed) == (2, 1)
        assert all(r is not None for r in report.results)

    def test_retry_rescues_a_transient_failure(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "cache")
        real = orchestrator.run_cell
        failures = {"packing": 1}  # fail the first attempt only

        def transient(scenario, system, **kw):
            if failures.get(system, 0) > 0:
                failures[system] -= 1
                raise RuntimeError("transient blip")
            return real(scenario, system, **kw)

        monkeypatch.setattr(orchestrator, "run_cell", transient)
        monkeypatch.setattr(orchestrator, "_RETRY_BACKOFF_S", 0.01)
        report = sweep(**base_kwargs(store, cell_retries=1))
        assert report.n_quarantined == 0
        assert all(r is not None for r in report.results)

    def test_on_error_raise_fails_fast_after_retries(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path / "cache")
        attempts = []

        def broken(scenario, system, **kw):
            attempts.append(system)
            raise RuntimeError("permanent")

        monkeypatch.setattr(orchestrator, "run_cell", broken)
        monkeypatch.setattr(orchestrator, "_RETRY_BACKOFF_S", 0.01)
        with pytest.raises(RuntimeError, match="permanent"):
            sweep(
                **base_kwargs(store, cell_retries=2, on_error="raise"),
            )
        assert len(attempts) == 3  # 1 try + 2 retries, then raise

    def test_bad_on_error_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="on_error"):
            sweep(
                scenarios=[TINY], systems=("round-robin",), use_cache=False,
                on_error="explode",
            )

    def test_failed_training_quarantines_its_group(
        self, tmp_path, monkeypatch
    ):
        def no_train(args):
            raise RuntimeError("training diverged")

        monkeypatch.setattr(orchestrator, "_train_policy_task", no_train)
        store = ResultStore(tmp_path / "cache")
        report = sweep(
            scenarios=[TINY],
            systems=("round-robin", "drl-only"),
            seeds=(0,),
            workers=1,
            store=store,
            cell_retries=0,
            n_jobs=60,
            pretrain=False,
            online_epochs=0,
            local_epochs=0,
        )
        # The baseline cell computed; the DRL cell fell with its training.
        stages = {q["stage"] for q in report.quarantined}
        assert "train" in stages
        systems = {
            r["system"] for r in report.results if r is not None
        }
        assert systems == {"round-robin"}


class TestChaosPoison:
    def test_poisoned_cell_quarantines_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            CHAOS_POISON_ENV, f"{TINY.name}:packing:0"
        )
        store = ResultStore(tmp_path / "cache")
        report = sweep(**base_kwargs(store))
        assert report.n_quarantined == 1
        assert report.quarantined[0]["system"] == "packing"
        assert (store.root / QUARANTINE_FILE).exists()

    def test_unpoisoned_cells_unaffected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_POISON_ENV, "other-scenario:packing:0")
        store = ResultStore(tmp_path / "cache")
        report = sweep(**base_kwargs(store))
        assert report.n_quarantined == 0


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="needs SIGALRM"
)
class TestCellTimeout:
    def test_overrunning_cell_times_out_and_quarantines(
        self, tmp_path, monkeypatch
    ):
        def wedged(scenario, system, **kw):
            time.sleep(30.0)
            raise AssertionError("unreachable")

        monkeypatch.setattr(orchestrator, "run_cell", wedged)
        store = ResultStore(tmp_path / "cache")
        start = time.monotonic()
        report = sweep(
            **base_kwargs(
                store, systems=("round-robin",), cell_timeout=0.2
            )
        )
        assert time.monotonic() - start < 10.0
        assert report.n_quarantined == 1
        assert "CellTimeout" in report.quarantined[0]["error"]


class TestPoolRespawn:
    def test_sigkilled_worker_respawns_pool_and_completes(
        self, tmp_path, monkeypatch
    ):
        """A worker dying mid-cell breaks the pool; the sweep recovers."""
        real = orchestrator.run_cell
        marker = tmp_path / "killed-once"

        def suicidal(scenario, system, **kw):
            if system == "packing" and not marker.exists():
                marker.write_text("x")
                os.kill(os.getpid(), signal.SIGKILL)
            return real(scenario, system, **kw)

        monkeypatch.setattr(orchestrator, "run_cell", suicidal)
        store = ResultStore(tmp_path / "cache")
        report = sweep(**base_kwargs(store, workers=2))
        assert marker.exists(), "the chaos worker never ran"
        assert report.n_quarantined == 0
        assert all(r is not None for r in report.results)
        assert len(store) == 3

    def test_repeatedly_breaking_pool_gives_up(self, tmp_path, monkeypatch):
        def always_dies(scenario, system, **kw):
            os.kill(os.getpid(), signal.SIGKILL)

        monkeypatch.setattr(orchestrator, "run_cell", always_dies)
        monkeypatch.setattr(orchestrator, "_MAX_POOL_RESPAWNS", 1)
        store = ResultStore(tmp_path / "cache")
        with pytest.raises(RuntimeError, match="pool broke"):
            sweep(**base_kwargs(store, workers=2))
