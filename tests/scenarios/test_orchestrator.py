"""Orchestrator: determinism, caching, and aggregation."""

import pytest

from repro.scenarios.orchestrator import (
    aggregate_rows,
    render_sweep_csv,
    render_sweep_table,
    run_cell,
    sweep,
)
from repro.scenarios.specs import (
    FleetSpec,
    ScenarioSpec,
    ServerClassSpec,
    WorkloadSpec,
)
from repro.scenarios.store import ResultStore

#: A deliberately tiny scenario so orchestrator tests stay fast.
TINY = ScenarioSpec(
    name="tiny-test",
    description="4-server smoke scenario",
    fleet=FleetSpec(classes=(ServerClassSpec("standard", 4),)),
    workload=WorkloadSpec(n_train_segments=1),
)

FAST_SYSTEMS = ("round-robin", "packing")


class TestRunCell:
    def test_deterministic(self):
        a = run_cell(TINY, "round-robin", n_jobs=60, seed=3)
        b = run_cell(TINY, "round-robin", n_jobs=60, seed=3)
        assert a == b

    def test_seed_changes_result(self):
        a = run_cell(TINY, "round-robin", n_jobs=60, seed=3)
        b = run_cell(TINY, "round-robin", n_jobs=60, seed=4)
        assert a != b

    def test_result_is_json_plain(self):
        import json

        json.dumps(run_cell(TINY, "packing", n_jobs=60, seed=0))


class TestSweep:
    def test_parallel_matches_serial(self, tmp_path):
        kwargs = dict(
            scenarios=[TINY],
            systems=FAST_SYSTEMS,
            seeds=(0, 1),
            n_jobs=60,
            use_cache=False,
        )
        serial = sweep(workers=1, **kwargs)
        parallel = sweep(workers=4, **kwargs)
        assert serial.results == parallel.results

    def test_cache_hit_and_force(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        kwargs = dict(
            scenarios=[TINY], systems=("round-robin",), seeds=(0,),
            n_jobs=60, workers=1, store=store,
        )
        first = sweep(**kwargs)
        assert (first.n_computed, first.n_cached) == (1, 0)
        second = sweep(**kwargs)
        assert (second.n_computed, second.n_cached) == (0, 1)
        assert second.results == first.results
        forced = sweep(force=True, **kwargs)
        assert (forced.n_computed, forced.n_cached) == (1, 0)
        assert forced.results == first.results

    def test_parameter_change_invalidates(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        kwargs = dict(
            scenarios=[TINY], systems=("round-robin",), seeds=(0,),
            workers=1, store=store,
        )
        sweep(n_jobs=60, **kwargs)
        changed = sweep(n_jobs=70, **kwargs)
        assert changed.n_computed == 1  # different protocol => cache miss

    def test_grid_order_is_stable(self, tmp_path):
        report = sweep(
            scenarios=[TINY], systems=FAST_SYSTEMS, seeds=(0, 1),
            n_jobs=60, workers=2, use_cache=False,
        )
        labels = [(r["system"], r["seed"]) for r in report.results]
        assert labels == [
            ("round-robin", 0), ("round-robin", 1),
            ("packing", 0), ("packing", 1),
        ]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep(scenarios=[TINY], systems=(), use_cache=False)
        with pytest.raises(ValueError):
            sweep(scenarios=[TINY], seeds=(), use_cache=False)


class TestAggregation:
    def test_rows_average_over_seeds(self, tmp_path):
        report = sweep(
            scenarios=[TINY], systems=("round-robin",), seeds=(0, 1),
            n_jobs=60, workers=1, use_cache=False,
        )
        rows = report.rows()
        assert len(rows) == 1
        row = rows[0]
        assert row["n_seeds"] == 2
        mean_energy = sum(r["energy_kwh"] for r in report.results) / 2
        assert row["energy_kwh"] == pytest.approx(mean_energy)

    def test_renderings_contain_cells(self):
        rows = aggregate_rows(
            [
                {
                    "scenario": "tiny-test", "system": "round-robin", "seed": 0,
                    "num_servers": 4, "energy_kwh": 1.0, "acc_latency_s": 2e6,
                    "mean_latency_s": 10.0, "average_power_w": 100.0,
                }
            ]
        )
        table = render_sweep_table(rows)
        csv = render_sweep_csv(rows)
        assert "tiny-test" in table and "round-robin" in table
        assert csv.splitlines()[0].startswith("scenario,system")
        assert "tiny-test,round-robin" in csv


class TestElectricityAndReplayCells:
    @staticmethod
    def _replay_spec(tmp_path, tariff=None):
        from repro.scenarios.specs import TraceReplaySpec
        from repro.sim.job import Job
        from repro.workload.trace import write_trace_csv

        path = tmp_path / "trace.csv"
        write_trace_csv(
            [Job(i, i * 20.0, 150.0 + i, (0.3, 0.2, 0.1)) for i in range(60)],
            path,
        )
        return ScenarioSpec(
            name="tiny-replay",
            description="replayed smoke scenario",
            fleet=FleetSpec(classes=(ServerClassSpec("standard", 4),)),
            workload=WorkloadSpec(
                replay=TraceReplaySpec(paths=(str(path),), format="canonical"),
                n_train_segments=1,
            ),
            tariff=tariff,
        )

    def test_tariffed_cell_carries_cost_and_co2(self):
        from dataclasses import replace

        from repro.sim.power import TariffModel

        spec = replace(TINY, tariff=TariffModel(price=0.25, carbon=200.0))
        cell = run_cell(spec, "round-robin", n_jobs=60, seed=0)
        assert cell["cost_usd"] == pytest.approx(cell["energy_kwh"] * 0.25)
        assert cell["co2_kg"] == pytest.approx(cell["energy_kwh"] * 0.2)
        assert cell["cost_series"][-1][1] == pytest.approx(cell["cost_usd"])
        assert cell["co2_series"][-1][1] == pytest.approx(cell["co2_kg"])

    def test_untariffed_cell_reports_zero_account(self):
        cell = run_cell(TINY, "round-robin", n_jobs=60, seed=0)
        assert cell["cost_usd"] == 0.0
        assert cell["co2_kg"] == 0.0
        assert all(v == 0.0 for _, v in cell["cost_series"])

    def test_replay_cell_deterministic_and_cacheable(self, tmp_path):
        from repro.sim.power import TariffModel

        spec = self._replay_spec(tmp_path, tariff=TariffModel())
        store = ResultStore(tmp_path / "cache")
        first = sweep(
            scenarios=[spec], systems=("round-robin",), seeds=(0,),
            n_jobs=30, workers=1, store=store,
        )
        again = sweep(
            scenarios=[spec], systems=("round-robin",), seeds=(0,),
            n_jobs=30, workers=1, store=store,
        )
        assert first.n_computed == 1 and again.n_cached == 1
        assert again.results == first.results
        assert first.results[0]["cost_usd"] > 0

    def test_replay_and_synthetic_cells_never_share_cache_slots(self, tmp_path):
        from repro.scenarios.orchestrator import _protocol_dict, cell_request
        from repro.scenarios.orchestrator import SweepCell
        from repro.scenarios.store import content_key

        spec = self._replay_spec(tmp_path)
        protocol = _protocol_dict(60, 200, True, 1, 1)
        synth_key = content_key(
            cell_request(SweepCell(TINY, "round-robin", 0), protocol)
        )
        replay_key = content_key(
            cell_request(SweepCell(spec, "round-robin", 0), protocol)
        )
        assert synth_key != replay_key

    def test_series_rows_include_cost_and_co2(self, tmp_path):
        from dataclasses import replace

        from repro.scenarios.orchestrator import aggregate_series_rows
        from repro.sim.power import TariffModel

        spec = replace(TINY, tariff=TariffModel())
        report = sweep(
            scenarios=[spec], systems=("round-robin",), seeds=(0, 1),
            n_jobs=60, workers=1, use_cache=False,
        )
        rows = aggregate_series_rows(report.results)
        kinds = {row["series"] for row in rows}
        assert kinds == {"latency", "energy", "cost", "co2"}
        table = report.render_table()
        assert "Cost ($)" in table and "CO2 (kg)" in table
