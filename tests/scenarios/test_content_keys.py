"""Content-key coverage regressions: every behavioral knob must key.

The cache's correctness rests on one property: two specs that can
simulate differently must never share a content key, and two specs that
provably simulate identically should. These tests sweep every
:class:`FaultSpec` / :class:`SiteOutageSpec` field (the fields added
since schema v4) plus the orchestrator's ``profile`` flag, and pin the
null-spec normalization — ``faults=FaultSpec()`` keys identically to
``faults=None`` because a null spec injects nothing.
"""

import dataclasses

import pytest

from repro.faults.spec import FaultSpec, SiteOutageSpec
from repro.scenarios.builtin import FEDERATED_CORRELATED, PAPER_DEFAULT
from repro.scenarios.orchestrator import SweepCell, _protocol_dict, cell_request
from repro.scenarios.specs import ScenarioSpec


def _with_faults(spec: ScenarioSpec, faults: FaultSpec | None) -> ScenarioSpec:
    return dataclasses.replace(spec, faults=faults)


def _with_site_faults(faults: FaultSpec | None) -> ScenarioSpec:
    site = dataclasses.replace(FEDERATED_CORRELATED.sites[0], faults=faults)
    return dataclasses.replace(
        FEDERATED_CORRELATED, sites=(site,) + FEDERATED_CORRELATED.sites[1:]
    )


#: One active (non-default, non-null) value per FaultSpec field. An
#: outage rides along where needed so rate-free fields stay non-null —
#: is_null() specs are normalized out of the key by design.
_OUTAGE = SiteOutageSpec(site=0, start_fraction=0.2, duration_fraction=0.1)
_FAULT_FIELD_VALUES = {
    "crashes_per_server": 0.7,
    "crash_recovery_fraction": 0.5,
    "job_failure_prob": 0.2,
    "straggler_prob": 0.3,
    "straggler_factor": 4.0,
    "max_retries": 7,
    "retry_backoff_s": 5.0,
    "site_outages": (_OUTAGE,),
}


class TestFaultSpecFieldsKey:
    def test_every_faultspec_field_is_swept(self):
        assert set(_FAULT_FIELD_VALUES) == set(FaultSpec.__dataclass_fields__)

    @pytest.mark.parametrize("field", sorted(_FAULT_FIELD_VALUES))
    def test_scenario_level_field_changes_key(self, field):
        # Anchor on an *active* spec so recovery/retry knobs (inert when
        # null) are exercised against a non-null baseline. Outage
        # windows name site indices, so they need the federated anchor.
        anchor = FEDERATED_CORRELATED if field == "site_outages" else PAPER_DEFAULT
        base_faults = FaultSpec(crashes_per_server=0.1)
        base = _with_faults(anchor, base_faults)
        changed = _with_faults(
            anchor,
            dataclasses.replace(base_faults, **{field: _FAULT_FIELD_VALUES[field]}),
        )
        assert base.content_key() != changed.content_key()

    @pytest.mark.parametrize(
        "field", sorted(set(_FAULT_FIELD_VALUES) - {"site_outages"})
    )
    def test_site_level_field_changes_key(self, field):
        # site_outages is excluded: SiteSpec validation rejects it there
        # (outage windows live on the scenario-level FaultSpec).
        base_faults = FaultSpec(crashes_per_server=0.1)
        base = _with_site_faults(base_faults)
        changed = _with_site_faults(
            dataclasses.replace(base_faults, **{field: _FAULT_FIELD_VALUES[field]})
        )
        assert base.content_key() != changed.content_key()

    @pytest.mark.parametrize(
        "field, value",
        [("site", 1), ("start_fraction", 0.5), ("duration_fraction", 0.3)],
    )
    def test_site_outage_fields_change_key(self, field, value):
        base = _with_faults(
            FEDERATED_CORRELATED, FaultSpec(site_outages=(_OUTAGE,))
        )
        changed = _with_faults(
            FEDERATED_CORRELATED,
            FaultSpec(
                site_outages=(dataclasses.replace(_OUTAGE, **{field: value}),)
            ),
        )
        assert base.content_key() != changed.content_key()


class TestNullSpecNormalization:
    """``FaultSpec()`` injects nothing, so it must stay keyless."""

    def test_null_scenario_faults_key_like_none(self):
        assert (
            _with_faults(PAPER_DEFAULT, FaultSpec()).content_key()
            == PAPER_DEFAULT.content_key()
        )
        assert _with_faults(PAPER_DEFAULT, FaultSpec()).content_dict()["faults"] is None

    def test_null_site_faults_key_like_none(self):
        assert (
            _with_site_faults(FaultSpec()).content_key()
            == FEDERATED_CORRELATED.content_key()
        )

    def test_inert_knobs_on_null_spec_stay_keyless(self):
        # With every rate at zero, recovery/retry/straggler knobs are
        # provably unreachable — tweaking them must not split the cache.
        tweaked = FaultSpec(
            crash_recovery_fraction=0.9,
            straggler_factor=9.0,
            max_retries=0,
            retry_backoff_s=1.0,
        )
        assert tweaked.is_null()
        assert (
            _with_faults(PAPER_DEFAULT, tweaked).content_key()
            == PAPER_DEFAULT.content_key()
        )

    def test_active_spec_is_not_normalized(self):
        active = _with_faults(PAPER_DEFAULT, FaultSpec(job_failure_prob=0.1))
        assert active.content_key() != PAPER_DEFAULT.content_key()
        assert active.content_dict()["faults"] is not None


class TestProtocolKeying:
    """Orchestrator request payloads: profiling keys, telemetry rides out."""

    def _request(self, **kwargs) -> dict:
        cell = SweepCell(spec=PAPER_DEFAULT, system="M/M/k", seed=0)
        return cell_request(
            cell, _protocol_dict(600, 200, True, 1, 1, **kwargs)
        )

    def test_profile_flag_changes_request(self):
        assert self._request() != self._request(profile=True)

    def test_unprofiled_request_has_no_profile_slot(self):
        # The flag is present-only-when-true so every pre-profiling
        # cached key stays byte-identical.
        assert "profile" not in self._request()["protocol"]

    def test_telemetry_never_enters_the_request(self):
        payload = self._request(profile=True)
        assert "telemetry" not in payload
        assert "telemetry" not in payload["protocol"]
