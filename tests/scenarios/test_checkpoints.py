"""Policy checkpoint store: round-trips, schema gating, warm systems."""

import numpy as np
import pytest

from repro.core.config import PredictorConfig
from repro.core.predictor import WorkloadPredictor
from repro.nn.serialize import save_states
from repro.scenarios.checkpoints import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointStore,
    PolicyCheckpoint,
    ensure_checkpoint,
    restore_predictor,
    restore_prototype,
    train_policy,
    training_request,
    warm_scenario_system,
)
from repro.scenarios.specs import (
    FleetSpec,
    ScenarioSpec,
    ServerClassSpec,
    WorkloadSpec,
)
from repro.scenarios.store import content_key

TINY = ScenarioSpec(
    name="tiny-ckpt",
    description="4-server checkpoint scenario",
    fleet=FleetSpec(classes=(ServerClassSpec("standard", 4),)),
    workload=WorkloadSpec(n_train_segments=1),
)

#: Fast training knobs: no offline pretrain, no online epochs — the
#: checkpoint machinery is identical, only the weights stay at init.
FAST = dict(n_jobs=60, seed=0, pretrain=False, online_epochs=0)


@pytest.fixture(scope="module")
def policy() -> PolicyCheckpoint:
    return train_policy(TINY, with_predictor=False, **FAST)


class TestTrainingKey:
    def test_evaluation_knobs_do_not_change_the_key(self):
        base = content_key(training_request(TINY, 60, 0))
        assert base == content_key(training_request(TINY, 60, 0))
        # record_every / local_epochs / system are absent by design.
        request = training_request(TINY, 60, 0)
        assert "record_every" not in request
        assert "local_epochs" not in request
        assert "system" not in request

    def test_training_knobs_change_the_key(self):
        base = content_key(training_request(TINY, 60, 0))
        assert content_key(training_request(TINY, 70, 0)) != base
        assert content_key(training_request(TINY, 60, 1)) != base
        assert content_key(training_request(TINY, 60, 0, pretrain=False)) != base
        assert content_key(training_request(TINY, 60, 0, online_epochs=2)) != base


class TestStoreRoundTrip:
    def test_qnet_weights_bit_identical(self, tmp_path, policy):
        store = CheckpointStore(tmp_path / "ckpt")
        store.put("k" * 64, policy)
        loaded = store.get("k" * 64)
        assert loaded is not None
        assert loaded.epsilon == policy.epsilon
        assert set(loaded.qnet_state) == set(policy.qnet_state)
        for key, value in policy.qnet_state.items():
            assert np.array_equal(loaded.qnet_state[key], value)
        assert len(store) == 1

    def test_lstm_weights_bit_identical(self, tmp_path):
        # A hand-fitted predictor stands in for scenario-driven training
        # (whose default config would make the test slow); the blob path
        # is exactly the one train_policy uses.
        predictor = WorkloadPredictor(
            PredictorConfig(lookback=5, epochs=2), rng=np.random.default_rng(0)
        )
        predictor.fit(np.random.default_rng(1).uniform(5.0, 500.0, size=30))
        policy = PolicyCheckpoint(
            qnet_state={"0:w": np.arange(3.0)},
            epsilon=0.05,
            predictor_state=predictor.network.state_dict(),
            predictor_fitted=True,
            predictor_attempted=True,
        )
        store = CheckpointStore(tmp_path / "ckpt")
        store.put("a" * 64, policy)
        loaded = store.get("a" * 64, need_predictor=True)
        assert loaded is not None
        assert loaded.predictor_fitted
        for key, value in policy.predictor_state.items():
            assert np.array_equal(loaded.predictor_state[key], value)

    def test_stale_schema_blob_is_ignored(self, tmp_path, policy):
        store = CheckpointStore(tmp_path / "ckpt")
        key = "b" * 64
        store.put(key, policy)
        # Rewrite the blob claiming a different schema version.
        save_states(
            store.path_for(key),
            {"qnet": policy.qnet_state},
            {"schema": CHECKPOINT_SCHEMA_VERSION + 1, "epsilon": 0.1},
        )
        assert store.get(key) is None
        assert store.path_for(key).exists()  # ignored, not deleted

    def test_corrupt_blob_is_deleted_miss(self, tmp_path, policy):
        store = CheckpointStore(tmp_path / "ckpt")
        key = "c" * 64
        path = store.put(key, policy)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 3])
        assert store.get(key) is None
        assert not path.exists()

    def test_predictor_free_blob_misses_when_predictor_needed(
        self, tmp_path, policy
    ):
        store = CheckpointStore(tmp_path / "ckpt")
        store.put("d" * 64, policy)  # trained with_predictor=False
        assert store.get("d" * 64) is not None
        assert store.get("d" * 64, need_predictor=True) is None

    def test_clear(self, tmp_path, policy):
        store = CheckpointStore(tmp_path / "ckpt")
        store.put("e" * 64, policy)
        store.put("f" * 64, policy)
        assert store.clear() == 2
        assert len(store) == 0


class TestWarmSystems:
    def test_restored_prototype_matches_trained_weights(self, policy):
        config = TINY.experiment_config(seed=0)
        broker = restore_prototype(policy, config, seed=123)
        for key, value in broker.qnet.state_dict().items():
            assert np.array_equal(policy.qnet_state[key], value)
        assert broker.epsilon == policy.epsilon

    def test_geometry_mismatch_raises(self, policy):
        other = ScenarioSpec(
            name="bigger",
            description="different fleet",
            fleet=FleetSpec(classes=(ServerClassSpec("standard", 8),)),
        )
        with pytest.raises(ValueError, match="geometry"):
            restore_prototype(policy, other.experiment_config(seed=0), seed=0)

    def test_predictor_required_but_absent_raises(self, policy):
        config = TINY.experiment_config(seed=0)
        with pytest.raises(ValueError, match="predictor"):
            restore_predictor(policy, config, seed=0)

    def test_warm_system_is_deterministic(self, policy):
        a, jobs_a, _ = warm_scenario_system(
            "drl-only", TINY, 60, policy, seed=0, local_epochs=0
        )
        b, jobs_b, _ = warm_scenario_system(
            "drl-only", TINY, 60, policy, seed=0, local_epochs=0
        )
        assert [j.arrival_time for j in jobs_a] == [
            j.arrival_time for j in jobs_b
        ]
        sa = a.broker.qnet.state_dict()
        sb = b.broker.qnet.state_dict()
        assert all(np.array_equal(sa[k], sb[k]) for k in sa)

    def test_non_drl_system_rejected(self, policy):
        with pytest.raises(ValueError):
            warm_scenario_system("round-robin", TINY, 60, policy, seed=0)


class TestShardedWarmStart:
    def test_sharded_cell_accepts_checkpoint(self, policy):
        from repro.scenarios.sharding import run_cell_sharded

        cell = run_cell_sharded(
            TINY, "drl-only", n_jobs=80, seed=0, shards=2, workers=1,
            local_epochs=0, checkpoint=policy,
        )
        assert cell["shards"] == 2
        assert cell["n_jobs_completed"] == cell["n_jobs_offered"] == 80


class TestEnsureCheckpoint:
    def test_trains_once_then_loads(self, tmp_path, monkeypatch):
        store = CheckpointStore(tmp_path / "ckpt")
        calls = []
        import repro.scenarios.checkpoints as checkpoints

        real = checkpoints.train_policy

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(checkpoints, "train_policy", counting)
        first = ensure_checkpoint(store, TINY, with_predictor=False, **FAST)
        second = ensure_checkpoint(store, TINY, with_predictor=False, **FAST)
        assert len(calls) == 1
        assert len(store) == 1
        for key, value in first.qnet_state.items():
            assert np.array_equal(second.qnet_state[key], value)


class TestWorkloadKindKeys:
    """Trace-replay and synthetic cells must never share training keys."""

    def test_replay_and_synthetic_training_keys_differ(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec
        from repro.sim.job import Job
        from repro.workload.trace import write_trace_csv

        path = tmp_path / "trace.csv"
        write_trace_csv(
            [Job(i, i * 10.0, 120.0, (0.3, 0.2, 0.1)) for i in range(30)], path
        )
        replay_spec = ScenarioSpec(
            name="tiny-ckpt",  # same cosmetic name: labels never key
            description="same label, replayed workload",
            fleet=TINY.fleet,
            workload=WorkloadSpec(
                replay=TraceReplaySpec(paths=(str(path),), format="canonical"),
                n_train_segments=1,
            ),
        )
        synth_key = content_key(training_request(TINY, 60, 0))
        replay_key = content_key(training_request(replay_spec, 60, 0))
        assert synth_key != replay_key
        # ... and two replays of different files differ too.
        other = ScenarioSpec(
            name="tiny-ckpt",
            description="",
            fleet=TINY.fleet,
            workload=WorkloadSpec(
                replay=TraceReplaySpec(paths=(str(path) + ".other",),
                                       format="canonical"),
                n_train_segments=1,
            ),
        )
        assert content_key(training_request(other, 60, 0)) != replay_key

    def test_tariff_never_invalidates_training(self):
        from dataclasses import replace

        from repro.sim.power import TariffModel

        priced = replace(TINY, tariff=TariffModel.time_of_use(16, 21, 0.3, 0.1))
        assert content_key(training_request(TINY, 60, 0)) == content_key(
            training_request(priced, 60, 0)
        )
        # ... while the *result* identity does change with the tariff.
        assert TINY.content_key() != priced.content_key()

    def test_replay_and_synthetic_blobs_never_collide_in_store(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec
        from repro.sim.job import Job
        from repro.workload.trace import write_trace_csv

        path = tmp_path / "trace.csv"
        write_trace_csv(
            [Job(i, i * 30.0, 300.0, (0.3, 0.2, 0.1)) for i in range(40)], path
        )
        replay_spec = ScenarioSpec(
            name="tiny-ckpt",
            description="",
            fleet=TINY.fleet,
            workload=WorkloadSpec(
                replay=TraceReplaySpec(paths=(str(path),), format="canonical"),
                n_train_segments=1,
            ),
        )
        store = CheckpointStore(tmp_path / "ckpt")
        synth = ensure_checkpoint(store, TINY, with_predictor=False, **FAST)
        warm = ensure_checkpoint(store, replay_spec, with_predictor=False, **FAST)
        assert len(store) == 2  # two blobs: no cross-workload warm-start
        assert synth.meta["request"] != warm.meta["request"]
