"""Federated scenario layer: specs, content keys, cells, checkpoints, sweeps."""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.scenarios import registry
from repro.scenarios.checkpoints import (
    CheckpointStore,
    FederationPolicyCheckpoint,
    ensure_checkpoint,
    load_checkpoint,
    needs_policy,
    training_request,
)
from repro.scenarios.orchestrator import (
    aggregate_rows,
    aggregate_series_rows,
    run_cell,
    sweep,
)
from repro.scenarios.specs import (
    FleetSpec,
    JobClassSpec,
    ScenarioSpec,
    ServerClassSpec,
    SiteSpec,
    TraceReplaySpec,
    WorkloadSpec,
)
from repro.scenarios.store import ResultStore, content_key
from repro.sim.power import PowerModel, TariffModel
from repro.workload.synthetic import SyntheticTraceConfig

#: A deliberately tiny federated scenario for fast cells: two 2-server
#: sites under a light workload.
TINY_SITE = FleetSpec(classes=(ServerClassSpec("s", 2),))
TINY_FED = ScenarioSpec(
    name="tiny-fed",
    description="two tiny sites",
    workload=WorkloadSpec(
        classes=(
            JobClassSpec(
                "w", 1.0, SyntheticTraceConfig(n_jobs=100, horizon=4000.0)
            ),
        ),
        burst_coupling=1.0,
        n_train_segments=1,
    ),
    sites=(
        SiteSpec("east", TINY_SITE, tariff=TariffModel(price=0.05, carbon=150.0)),
        SiteSpec("west", TINY_SITE, tariff=TariffModel(price=0.25, carbon=600.0)),
    ),
    federation="least-loaded",
)


class TestSiteSpecValidation:
    def test_needs_name(self):
        with pytest.raises(ValueError, match="name"):
            SiteSpec("")

    def test_needs_positive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            SiteSpec("a", weight=0.0)


class TestScenarioValidation:
    def test_unknown_federation_policy(self):
        with pytest.raises(ValueError, match="unknown federation policy"):
            replace(TINY_FED, federation="teleport")

    def test_federation_policy_needs_sites(self):
        with pytest.raises(ValueError, match="sites"):
            ScenarioSpec(name="x", description="", federation="least-loaded")

    def test_capacity_windows_rejected_on_federated(self):
        from repro.scenarios.specs import CapacityWindowSpec

        with pytest.raises(ValueError, match="capacity windows"):
            replace(
                TINY_FED,
                capacity_windows=(
                    CapacityWindowSpec(0.1, 0.1, servers=(0,)),
                ),
            )

    def test_multi_site_replay_rejected(self):
        with pytest.raises(ValueError, match="replay"):
            replace(
                TINY_FED,
                workload=WorkloadSpec(
                    replay=TraceReplaySpec(
                        paths=("tests/fixtures/google_task_events_small.csv",)
                    ),
                ),
            )

    def test_multi_site_multi_class_rejected(self):
        with pytest.raises(ValueError, match="single class"):
            replace(
                TINY_FED,
                workload=WorkloadSpec(
                    classes=(JobClassSpec("a", 0.5), JobClassSpec("b", 0.5)),
                ),
            )

    def test_num_servers_total_sums_sites(self):
        assert TINY_FED.num_servers_total == 4
        assert TINY_FED.is_federated

    def test_build_traces_refuses_multi_site(self):
        with pytest.raises(ValueError, match="build_site_traces"):
            TINY_FED.build_traces(50, seed=0)


class TestContentKeys:
    def test_sites_change_the_key(self):
        single = ScenarioSpec(name="a", description="")
        fed = replace(
            single, sites=(SiteSpec("solo", fleet=single.fleet),)
        )
        assert single.content_key() != fed.content_key()

    def test_site_rename_keeps_the_key(self):
        renamed = replace(
            TINY_FED,
            sites=tuple(
                replace(site, name=f"renamed-{i}")
                for i, site in enumerate(TINY_FED.sites)
            ),
        )
        assert renamed.content_key() == TINY_FED.content_key()

    def test_site_tariff_changes_content_key_not_training_key(self):
        repriced = replace(
            TINY_FED,
            sites=(
                TINY_FED.sites[0],
                replace(TINY_FED.sites[1], tariff=TariffModel(price=0.99)),
            ),
        )
        assert repriced.content_key() != TINY_FED.content_key()
        assert content_key(training_request(TINY_FED, 50, 0)) == content_key(
            training_request(repriced, 50, 0)
        )

    def test_federation_policy_changes_both_keys(self):
        other = replace(TINY_FED, federation="price-greedy")
        assert other.content_key() != TINY_FED.content_key()
        assert content_key(training_request(TINY_FED, 50, 0)) != content_key(
            training_request(other, 50, 0)
        )

    def test_site_fleet_changes_the_key(self):
        bigger = replace(
            TINY_FED,
            sites=(
                TINY_FED.sites[0],
                replace(
                    TINY_FED.sites[1],
                    fleet=FleetSpec(
                        classes=(ServerClassSpec("s", 2, PowerModel(idle_power=50.0)),)
                    ),
                ),
            ),
        )
        assert bigger.content_key() != TINY_FED.content_key()

    def test_content_dict_is_json_plain(self):
        json.dumps(TINY_FED.content_dict())


class TestSiteTraces:
    def test_streams_and_segments_have_one_entry_per_site(self):
        eval_streams, train_streams = TINY_FED.build_site_traces(60, seed=0)
        assert len(eval_streams) == 2
        assert all(len(segment) == 2 for segment in train_streams)
        assert len(train_streams) == TINY_FED.workload.n_train_segments

    def test_job_ids_unique_fleet_wide(self):
        eval_streams, train_streams = TINY_FED.build_site_traces(60, seed=0)
        ids = [job.job_id for stream in eval_streams for job in stream]
        assert len(ids) == len(set(ids))
        for segment in train_streams:
            ids = [job.job_id for stream in segment for job in stream]
            assert len(ids) == len(set(ids))

    def test_weights_split_the_stream(self):
        skewed = replace(
            TINY_FED,
            sites=(
                replace(TINY_FED.sites[0], weight=3.0),
                replace(TINY_FED.sites[1], weight=1.0),
            ),
        )
        eval_streams, _ = skewed.build_site_traces(80, seed=0)
        assert len(eval_streams[0]) == 60
        assert len(eval_streams[1]) == 20

    def test_deterministic_per_seed(self):
        a, _ = TINY_FED.build_site_traces(60, seed=5)
        b, _ = TINY_FED.build_site_traces(60, seed=5)
        assert a == b


class TestFederatedCell:
    def test_result_carries_fleet_and_site_breakdowns(self):
        result = run_cell(TINY_FED, "round-robin", n_jobs=60, seed=0)
        assert result["federation"] == "least-loaded"
        assert result["num_servers"] == 4
        assert len(result["sites"]) == 2
        assert result["n_jobs_completed"] == sum(
            site["n_jobs_completed"] for site in result["sites"]
        )
        assert result["cost_usd"] == pytest.approx(
            sum(site["cost_usd"] for site in result["sites"])
        )
        assert result["co2_kg"] == pytest.approx(
            sum(site["co2_kg"] for site in result["sites"])
        )
        json.dumps(result)  # journal-able

    def test_deterministic_across_runs(self):
        a = run_cell(TINY_FED, "round-robin", n_jobs=60, seed=0)
        b = run_cell(TINY_FED, "round-robin", n_jobs=60, seed=0)
        assert a == b

    def test_price_greedy_prefers_the_cheap_site(self):
        spec = replace(TINY_FED, federation="price-greedy")
        result = run_cell(spec, "round-robin", n_jobs=60, seed=0)
        east, west = result["sites"]
        # Flat tariffs: east is always cheaper, so it serves everything.
        assert east["n_jobs_completed"] == result["n_jobs_completed"]
        assert west["n_jobs_completed"] == 0

    def test_aggregate_rows_emit_per_site_rows(self):
        results = [run_cell(TINY_FED, "round-robin", n_jobs=60, seed=s) for s in (0, 1)]
        rows = aggregate_rows(results)
        labels = [row["scenario"] for row in rows]
        assert labels == ["tiny-fed", "tiny-fed[east]", "tiny-fed[west]"]
        assert all(row["n_seeds"] == 2 for row in rows)
        series_labels = {row["scenario"] for row in aggregate_series_rows(results)}
        assert series_labels == set(labels)

    def test_builtin_federated_scenarios_are_registered(self):
        for name in ("federated-correlated", "follow-the-sun"):
            spec = registry.get(name)
            assert spec.is_federated
            assert len(spec.sites) == 3
            assert spec.num_servers_total == 30


class TestFederationCheckpoints:
    DRL_FED = replace(TINY_FED, name="tiny-fed-drl", federation="drl")

    def test_needs_policy_for_any_system_under_drl_federation(self):
        assert needs_policy(self.DRL_FED, "round-robin")
        assert needs_policy(TINY_FED, "drl-only")
        assert not needs_policy(TINY_FED, "round-robin")

    def test_train_store_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        ck = ensure_checkpoint(
            store, self.DRL_FED, n_jobs=40, seed=0, with_predictor=False
        )
        assert isinstance(ck, FederationPolicyCheckpoint)
        assert len(ck.site_checkpoints) == 2
        assert ck.fed_qnet_state is not None
        key = content_key(training_request(self.DRL_FED, 40, 0))
        loaded = load_checkpoint(store, key, self.DRL_FED)
        assert loaded is not None
        for k, v in ck.fed_qnet_state.items():
            assert np.array_equal(loaded.fed_qnet_state[k], v)
        for mine, theirs in zip(ck.site_checkpoints, loaded.site_checkpoints):
            for k, v in mine.qnet_state.items():
                assert np.array_equal(theirs.qnet_state[k], v)

    def test_blob_without_fed_policy_misses_when_required(self, tmp_path):
        store = CheckpointStore(tmp_path)
        # Train for the least-loaded flavor: site weights only.
        ck = ensure_checkpoint(store, TINY_FED, n_jobs=40, seed=0, with_predictor=False)
        assert ck.fed_qnet_state is None
        key = content_key(training_request(TINY_FED, 40, 0))
        assert store.get_federation(key) is not None
        assert store.get_federation(key, need_fed_policy=True) is None
        # And a federated blob never serves a single-cluster lookup.
        assert store.get(key) is None

    def test_warm_cell_runs_from_checkpoint(self, tmp_path):
        store = CheckpointStore(tmp_path)
        ck = ensure_checkpoint(
            store, self.DRL_FED, n_jobs=40, seed=0, with_predictor=False
        )
        result = run_cell(self.DRL_FED, "round-robin", n_jobs=40, seed=0, checkpoint=ck)
        assert result["federation"] == "drl"
        assert result["n_jobs_completed"] > 0


class TestFederatedSweep:
    def test_sweep_runs_and_caches_federated_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        kwargs = dict(
            scenarios=[TINY_FED],
            systems=("round-robin",),
            seeds=(0,),
            n_jobs=60,
            workers=1,
            store=store,
        )
        first = sweep(**kwargs)
        assert first.n_computed == 1
        assert first.results[0]["sites"]
        second = sweep(**kwargs)
        assert second.n_cached == 1
        assert second.results[0]["sites"] == first.results[0]["sites"]

    def test_sharding_refuses_federated_scenarios(self):
        from repro.scenarios.sharding import run_cell_sharded

        with pytest.raises(ValueError, match="federated"):
            run_cell_sharded(TINY_FED, "round-robin", n_jobs=60, shards=2)
