"""Registry behavior and builtin-suite round trips."""

import pytest

from repro.harness.runner import run_system, make_system
from repro.scenarios import registry
from repro.scenarios.specs import ScenarioSpec


class TestRegistry:
    def test_at_least_six_builtins(self):
        names = registry.names()
        assert len(names) >= 6
        for expected in (
            "paper-default",
            "diurnal-heavy",
            "flash-crowd",
            "hetero-fleet",
            "maintenance-churn",
            "tenant-mix",
        ):
            assert expected in names

    def test_get_unknown_lists_known(self):
        with pytest.raises(KeyError, match="paper-default"):
            registry.get("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        spec = ScenarioSpec(name="test-dup", description="")
        registry.register(spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                registry.register(spec)
            replacement = ScenarioSpec(name="test-dup", description="v2")
            assert registry.register(replacement, overwrite=True) is replacement
        finally:
            registry._REGISTRY.pop("test-dup", None)

    def test_catalog_mentions_every_scenario(self):
        catalog = registry.scenario_catalog()
        for name in registry.names():
            assert name in catalog


class TestBuiltinRoundTrip:
    @pytest.mark.parametrize("name", [
        "paper-default",
        "diurnal-heavy",
        "flash-crowd",
        "hetero-fleet",
        "maintenance-churn",
        "tenant-mix",
        "carbon-aware-diurnal",
        "tou-price-shift",
        "correlated-fleet",
    ])
    def test_builds_and_simulates(self, name):
        """Every builtin produces a runnable config, traces, and churn plan."""
        spec = registry.get(name)
        config = spec.experiment_config(seed=0)
        assert config.num_servers == spec.fleet.num_servers
        eval_jobs, train = spec.build_traces(80, seed=0)
        assert len(eval_jobs) >= 80  # flash crowds may add extras
        assert train
        system = make_system("round-robin", config)
        events = spec.capacity_events(spec.horizon_for(80))
        result = run_system(system, eval_jobs, record_every=50,
                            capacity_events=events)
        assert result.n_jobs == len(eval_jobs)
        assert result.energy_kwh > 0


class TestNewBuiltins:
    def test_all_ten_registered(self):
        names = registry.names()
        for expected in (
            "google-replay",
            "carbon-aware-diurnal",
            "tou-price-shift",
            "correlated-fleet",
        ):
            assert expected in names
        assert len(names) >= 10

    def test_google_replay_round_trip(self, tmp_path):
        """The replay builtin runs end-to-end against the bundled fixture."""
        from dataclasses import replace
        from pathlib import Path

        fixture = (
            Path(__file__).resolve().parents[1]
            / "fixtures"
            / "google_task_events_small.csv"
        )
        spec = registry.get("google-replay")
        spec = replace(
            spec,
            workload=replace(
                spec.workload,
                replay=replace(spec.workload.replay, paths=(str(fixture),)),
            ),
        )
        eval_jobs, train = spec.build_traces(80, seed=0)
        assert len(eval_jobs) == 80
        assert train and all(train)
        system = make_system("round-robin", spec.experiment_config(seed=0))
        result = run_system(
            system, eval_jobs, record_every=50, tariff=spec.tariff
        )
        assert result.n_jobs == 80
        assert result.energy_kwh > 0
        assert result.cost_usd > 0
        assert result.co2_kg > 0
        assert len(result.cost_series) == len(result.energy_series)

    def test_electricity_scenarios_carry_tariffs(self):
        assert registry.get("carbon-aware-diurnal").tariff is not None
        assert registry.get("tou-price-shift").tariff is not None
        assert registry.get("tou-price-shift").tariff.price_windows
        assert registry.get("carbon-aware-diurnal").tariff.carbon_windows

    def test_correlated_fleet_couples_bursts(self):
        spec = registry.get("correlated-fleet")
        assert spec.workload.burst_coupling == 1.0
        assert len(spec.workload.classes) == 2
