"""Registry behavior and builtin-suite round trips."""

import pytest

from repro.harness.runner import run_system, make_system
from repro.scenarios import registry
from repro.scenarios.specs import ScenarioSpec


class TestRegistry:
    def test_at_least_six_builtins(self):
        names = registry.names()
        assert len(names) >= 6
        for expected in (
            "paper-default",
            "diurnal-heavy",
            "flash-crowd",
            "hetero-fleet",
            "maintenance-churn",
            "tenant-mix",
        ):
            assert expected in names

    def test_get_unknown_lists_known(self):
        with pytest.raises(KeyError, match="paper-default"):
            registry.get("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        spec = ScenarioSpec(name="test-dup", description="")
        registry.register(spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                registry.register(spec)
            replacement = ScenarioSpec(name="test-dup", description="v2")
            assert registry.register(replacement, overwrite=True) is replacement
        finally:
            registry._REGISTRY.pop("test-dup", None)

    def test_catalog_mentions_every_scenario(self):
        catalog = registry.scenario_catalog()
        for name in registry.names():
            assert name in catalog


class TestBuiltinRoundTrip:
    @pytest.mark.parametrize("name", [
        "paper-default",
        "diurnal-heavy",
        "flash-crowd",
        "hetero-fleet",
        "maintenance-churn",
        "tenant-mix",
    ])
    def test_builds_and_simulates(self, name):
        """Every builtin produces a runnable config, traces, and churn plan."""
        spec = registry.get(name)
        config = spec.experiment_config(seed=0)
        assert config.num_servers == spec.fleet.num_servers
        eval_jobs, train = spec.build_traces(80, seed=0)
        assert len(eval_jobs) >= 80  # flash crowds may add extras
        assert train
        system = make_system("round-robin", config)
        events = spec.capacity_events(spec.horizon_for(80))
        result = run_system(system, eval_jobs, record_every=50,
                            capacity_events=events)
        assert result.n_jobs == len(eval_jobs)
        assert result.energy_kwh > 0
