"""Tests for repro.scenarios.sharding: single-cell trace sharding."""

import pytest

from repro.scenarios.orchestrator import run_cell
from repro.scenarios.sharding import (
    SHARD_TOLERANCE,
    combine_shard_metrics,
    run_cell_sharded,
    shard_capacity_events,
    shard_trace,
)
from repro.sim.churn import CapacityEvent
from repro.sim.job import Job


def trace(n=20, dt=10.0):
    return [Job(i, i * dt, 60.0, (0.2, 0.1, 0.1)) for i in range(n)]


class TestShardTrace:
    def test_partitions_all_jobs(self):
        segments, starts = shard_trace(trace(20), 3)
        assert [len(s) for s in segments] == [7, 7, 6]
        assert starts == [0.0, 70.0, 140.0]

    def test_segments_rebased_to_zero(self):
        segments, _ = shard_trace(trace(10), 2)
        for seg in segments:
            assert seg[0].arrival_time == 0.0
            assert all(
                a.arrival_time <= b.arrival_time for a, b in zip(seg, seg[1:])
            )

    def test_shards_clamped_to_trace_length(self):
        segments, _ = shard_trace(trace(3), 10)
        assert len(segments) == 3
        assert all(len(s) == 1 for s in segments)

    def test_single_shard_is_whole_trace(self):
        segments, starts = shard_trace(trace(5), 1)
        assert len(segments) == 1 and len(segments[0]) == 5
        assert starts == [0.0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            shard_trace(trace(5), 0)
        with pytest.raises(ValueError):
            shard_trace([], 2)


class TestShardCapacityEvents:
    def test_events_routed_and_shifted(self):
        starts = [0.0, 100.0, 200.0]
        events = (
            CapacityEvent(time=10.0, server_id=0, duration=5.0),
            CapacityEvent(time=150.0, server_id=1, duration=5.0, fraction=0.5),
            CapacityEvent(time=250.0, server_id=2, duration=5.0),
        )
        routed = shard_capacity_events(events, starts)
        assert [len(r) for r in routed] == [1, 1, 1]
        assert routed[0][0].time == 10.0
        assert routed[1][0].time == 50.0 and routed[1][0].fraction == 0.5
        assert routed[2][0].time == 50.0 and routed[2][0].server_id == 2

    def test_no_events(self):
        assert shard_capacity_events((), [0.0, 10.0]) == [(), ()]


class TestCombine:
    def test_additive_fields_and_derived_means(self):
        shards = [
            {"n_jobs_offered": 10, "n_jobs_completed": 10, "energy_kwh": 1.0,
             "acc_latency_s": 500.0, "final_time_s": 1000.0, "capacity_events": 1},
            {"n_jobs_offered": 10, "n_jobs_completed": 9, "energy_kwh": 2.0,
             "acc_latency_s": 450.0, "final_time_s": 800.0, "capacity_events": 0},
        ]
        combined = combine_shard_metrics(shards)
        assert combined["n_jobs_completed"] == 19
        assert combined["energy_kwh"] == pytest.approx(3.0)
        assert combined["mean_latency_s"] == pytest.approx(950.0 / 19)
        assert combined["average_power_w"] == pytest.approx(3.0 * 3.6e6 / 1800.0)
        assert combined["shards"] == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            combine_shard_metrics([])


class TestRunCellSharded:
    # Intensive metrics tolerate small shards; extensive (span) metrics
    # need shard windows well beyond the 2 h job-duration cap, hence the
    # properly-sized cell below (see the module docstring of
    # repro.scenarios.sharding for the documented sizing rule).
    @pytest.fixture(scope="class")
    def unsharded(self):
        return run_cell("paper-default", "round-robin", n_jobs=400, seed=0)

    @pytest.fixture(scope="class")
    def sharded(self):
        return run_cell_sharded(
            "paper-default", "round-robin", n_jobs=400, seed=0, shards=4
        )

    def test_all_jobs_complete(self, unsharded, sharded):
        assert sharded["n_jobs_offered"] == unsharded["n_jobs_offered"]
        assert sharded["n_jobs_completed"] == unsharded["n_jobs_completed"]

    def test_intensive_metrics_within_tolerance_small_shards(
        self, unsharded, sharded
    ):
        for key in ("average_power_w", "mean_latency_s"):
            assert sharded[key] == pytest.approx(
                unsharded[key], rel=SHARD_TOLERANCE
            ), key

    def test_all_metrics_within_tolerance_when_sized_right(self):
        unsharded = run_cell("paper-default", "round-robin", n_jobs=4800, seed=0)
        sharded = run_cell_sharded(
            "paper-default", "round-robin", n_jobs=4800, seed=0, shards=2
        )
        for key in ("energy_kwh", "average_power_w", "final_time_s",
                    "mean_latency_s", "energy_per_job_wh"):
            assert sharded[key] == pytest.approx(
                unsharded[key], rel=SHARD_TOLERANCE
            ), key

    def test_provenance_fields(self, sharded):
        assert sharded["shards"] == 4
        assert sharded["scenario"] == "paper-default"
        assert sharded["system"] == "round-robin"
        assert sharded["workers_used"] >= 1

    def test_sharded_deterministic(self, sharded):
        again = run_cell_sharded(
            "paper-default", "round-robin", n_jobs=400, seed=0, shards=4
        )
        for key, value in sharded.items():
            if isinstance(value, float):
                assert again[key] == pytest.approx(value, rel=1e-12), key
            else:
                assert again[key] == value, key

    def test_churny_scenario_routes_events(self):
        cell = run_cell_sharded(
            "maintenance-churn", "round-robin", n_jobs=200, seed=1, shards=2
        )
        assert cell["capacity_events"] > 0
        assert cell["n_jobs_completed"] == cell["n_jobs_offered"]

    def test_pool_path_matches_serial_fallback(self):
        """Forcing a 2-worker pool (even on 1 CPU) must reproduce the
        serial shard-execution results exactly — warm copies are handed
        off by pickling either way."""
        serial = run_cell_sharded(
            "paper-default", "round-robin", n_jobs=200, seed=3, shards=2, workers=1
        )
        pooled = run_cell_sharded(
            "paper-default", "round-robin", n_jobs=200, seed=3, shards=2, workers=2
        )
        assert pooled["workers_used"] == 2
        for key, value in serial.items():
            if key == "workers_used":
                continue
            if isinstance(value, float):
                assert pooled[key] == pytest.approx(value, rel=1e-12), key
            else:
                assert pooled[key] == value, key

    def test_sharded_drl_system_runs(self):
        cell = run_cell_sharded(
            "paper-default", "drl-only", n_jobs=150, seed=0, shards=2
        )
        assert cell["n_jobs_completed"] == 150
        assert cell["shards"] == 2

    def test_one_shard_matches_semantics(self):
        cell = run_cell_sharded(
            "paper-default", "round-robin", n_jobs=120, seed=0, shards=1
        )
        assert cell["shards"] == 1
        assert cell["n_jobs_completed"] == 120


class TestShardedTariff:
    @staticmethod
    def _tou_spec():
        # Peak price confined to the experiment's opening window: only
        # shard 0 should pay it. An unshifted shard would re-enter the
        # peak window at its local t = 0, over-billing every shard.
        from dataclasses import replace

        from repro.scenarios import registry
        from repro.sim.power import TariffModel

        return replace(
            registry.get("paper-default"),
            tariff=TariffModel(price=0.05, price_windows=((0.0, 600.0, 0.40),)),
        )

    def test_shards_receive_absolute_time_offsets(self, monkeypatch):
        import repro.scenarios.sharding as sharding_module
        from repro.scenarios.sharding import shard_trace
        from repro.harness.runner import make_scenario_system

        spec = self._tou_spec()
        captured = []
        original = sharding_module._run_shard

        def spy(args):
            captured.append(args[4])  # the shard's tariff
            return original(args)

        monkeypatch.setattr(sharding_module, "_run_shard", spy)
        run_cell_sharded(spec, "round-robin", n_jobs=200, seed=0, shards=3,
                         workers=1)
        assert len(captured) == 3
        _, eval_jobs, _ = make_scenario_system(
            "round-robin", spec, 200, seed=0
        )
        _, starts = shard_trace(eval_jobs, 3)
        assert [t.t_offset for t in captured] == pytest.approx(starts)

    def test_sharded_cost_tracks_the_unsharded_account(self):
        # End-to-end sanity at small-shard scale: the effective price
        # paid ($/kWh) must track the unsharded run despite the
        # documented extensive-energy drain bias (which, unshifted,
        # would instead more than double the effective price here).
        spec = self._tou_spec()
        unsharded = run_cell(spec, "round-robin", n_jobs=400, seed=0)
        sharded = run_cell_sharded(
            spec, "round-robin", n_jobs=400, seed=0, shards=4
        )
        assert unsharded["cost_usd"] > 0 and sharded["cost_usd"] > 0
        effective_u = unsharded["cost_usd"] / unsharded["energy_kwh"]
        effective_s = sharded["cost_usd"] / sharded["energy_kwh"]
        assert effective_s == pytest.approx(effective_u, rel=0.25)
        assert sharded["co2_kg"] > 0
