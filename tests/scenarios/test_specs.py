"""ScenarioSpec / WorkloadSpec / FleetSpec construction and identity."""

import pytest

from repro.scenarios.specs import (
    CapacityWindowSpec,
    FleetSpec,
    FlashCrowdSpec,
    JobClassSpec,
    ScenarioSpec,
    ServerClassSpec,
    WorkloadSpec,
    groups_for,
    rolling_maintenance,
)
from repro.sim.power import PowerModel


class TestValidation:
    def test_scenario_needs_name(self):
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec(name="", description="x")

    def test_capacity_window_servers_must_exist(self):
        window = CapacityWindowSpec(0.1, 0.1, servers=(99,))
        with pytest.raises(ValueError, match="outside"):
            ScenarioSpec(name="s", description="", capacity_windows=(window,))

    def test_flash_crowd_bounds(self):
        with pytest.raises(ValueError):
            FlashCrowdSpec(1.0, 0.1, 2.0)
        with pytest.raises(ValueError):
            FlashCrowdSpec(0.1, 0.0, 2.0)
        with pytest.raises(ValueError):
            FlashCrowdSpec(0.1, 0.1, 1.0)

    def test_fleet_group_divisibility(self):
        with pytest.raises(ValueError, match="divisible"):
            FleetSpec(classes=(ServerClassSpec("a", 10),), num_groups=3)

    def test_rolling_maintenance_overrun_rejected(self):
        with pytest.raises(ValueError, match="overruns"):
            rolling_maintenance(30, 3, n_waves=10, spacing=0.15)


class TestFleetSpec:
    def test_homogeneous_has_no_model_list(self):
        fleet = FleetSpec()
        assert fleet.num_servers == 30
        assert fleet.power_models() is None
        assert not fleet.is_heterogeneous

    def test_heterogeneous_expansion(self):
        a, b = PowerModel(idle_power=50, peak_power=100), PowerModel()
        fleet = FleetSpec(
            classes=(ServerClassSpec("new", 2, a), ServerClassSpec("old", 3, b))
        )
        models = fleet.power_models()
        assert models == (a, a, b, b, b)
        assert fleet.num_servers == 5

    def test_groups_default(self):
        assert groups_for(30) == 3
        assert groups_for(40) == 4
        assert groups_for(7) == 1
        assert FleetSpec(classes=(ServerClassSpec("s", 8),)).groups() == 4


class TestExperimentConfig:
    def test_heterogeneous_config_round_trip(self):
        spec = ScenarioSpec(
            name="s",
            description="",
            fleet=FleetSpec(
                classes=(
                    ServerClassSpec(
                        "new", 2, PowerModel(idle_power=50, peak_power=100)
                    ),
                    ServerClassSpec("old", 2, PowerModel()),
                )
            ),
        )
        config = spec.experiment_config(seed=5)
        assert config.num_servers == 4
        assert config.power_models is not None
        assert len(config.power_models) == 4
        assert config.seed == 5
        assert config.fleet_power_models == config.power_models

    def test_homogeneous_uses_shared_model(self):
        config = ScenarioSpec(name="s", description="").experiment_config()
        assert config.power_models is None
        assert config.fleet_power_models is config.power_model


class TestTraces:
    def test_build_traces_deterministic(self):
        spec = ScenarioSpec(name="s", description="")
        a_eval, a_train = spec.build_traces(60, seed=4)
        b_eval, b_train = spec.build_traces(60, seed=4)
        assert a_eval == b_eval
        assert a_train == b_train

    def test_eval_and_train_streams_differ(self):
        spec = ScenarioSpec(name="s", description="")
        eval_jobs, train = spec.build_traces(250, seed=0)
        assert len(eval_jobs) == 250
        assert len(train) == 2
        assert train[0] != train[1]
        trained = [j.duration for j in train[0][:20]]
        assert trained != [j.duration for j in eval_jobs[:20]]

    def test_capacity_events_scale_with_horizon(self):
        window = CapacityWindowSpec(0.5, 0.1, servers=(0, 1))
        spec = ScenarioSpec(name="s", description="", capacity_windows=(window,))
        events = spec.capacity_events(1000.0)
        assert len(events) == 2
        assert all(e.time == pytest.approx(500.0) for e in events)
        assert all(e.duration == pytest.approx(100.0) for e in events)


class TestContentKey:
    def test_stable_and_parameter_sensitive(self):
        a = ScenarioSpec(name="s", description="d")
        b = ScenarioSpec(name="s", description="d")
        assert a.content_key() == b.content_key()
        # Renames and re-wordings are cosmetic: cached results survive.
        renamed = ScenarioSpec(name="other", description="reworded")
        assert renamed.content_key() == a.content_key()
        # So are job/server class labels.
        relabeled = ScenarioSpec(
            name="s",
            description="d",
            workload=WorkloadSpec(classes=(JobClassSpec("renamed-class", 1.0),)),
        )
        assert relabeled.content_key() == a.content_key()
        # A single deep parameter change flips the key.
        c = ScenarioSpec(
            name="s",
            description="d",
            workload=WorkloadSpec(
                classes=(JobClassSpec("default", 1.0),), rate_scale=1.0001
            ),
        )
        assert c.content_key() != a.content_key()

    def test_content_dict_is_json_plain(self):
        import json

        spec = ScenarioSpec(
            name="s",
            description="d",
            fleet=FleetSpec(
                classes=(
                    ServerClassSpec(
                        "x", 2, PowerModel(idle_power=50, peak_power=99)
                    ),
                )
            ),
            capacity_windows=(CapacityWindowSpec(0.1, 0.1, servers=(0,)),),
        )
        json.dumps(spec.content_dict())  # must not raise


FIXTURE = __import__("pathlib").Path(__file__).resolve().parents[1] / "fixtures"
GOOGLE_FIXTURE = str(FIXTURE / "google_task_events_small.csv")


def canonical_trace(tmp_path, n=40, spacing=10.0):
    from repro.sim.job import Job
    from repro.workload.trace import write_trace_csv

    path = tmp_path / "canon.csv"
    jobs = [
        Job(i, i * spacing, 100.0 + i, (0.3, 0.2, 0.1)) for i in range(n)
    ]
    write_trace_csv(jobs, path)
    return path


class TestTraceReplaySpec:
    def test_validation(self):
        from repro.scenarios.specs import TraceReplaySpec

        with pytest.raises(ValueError, match="at least one path"):
            TraceReplaySpec(paths=())
        with pytest.raises(ValueError, match="format"):
            TraceReplaySpec(paths=("a.csv",), format="parquet")
        with pytest.raises(ValueError, match="min_duration"):
            TraceReplaySpec(paths=("a.csv",), min_duration=0.0)
        with pytest.raises(ValueError, match="time_compression"):
            TraceReplaySpec(paths=("a.csv",), time_compression=0.0)
        with pytest.raises(ValueError, match="split"):
            TraceReplaySpec(paths=("a.csv",), split="sideways")

    def test_lone_string_path_normalized(self):
        from repro.scenarios.specs import TraceReplaySpec

        spec = TraceReplaySpec(paths="a.csv")
        assert spec.paths == ("a.csv",)

    def test_load_google_fixture(self):
        from repro.scenarios.specs import TraceReplaySpec

        jobs = TraceReplaySpec(paths=(GOOGLE_FIXTURE,)).load_jobs()
        assert len(jobs) == 120  # see tests/fixtures/make_google_fixture.py
        assert jobs[0].arrival_time == 0.0
        assert all(60.0 <= j.duration <= 7200.0 for j in jobs)
        arrivals = [j.arrival_time for j in jobs]
        assert arrivals == sorted(arrivals)

    def test_canonical_format_and_duration_window(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec

        path = canonical_trace(tmp_path)
        jobs = TraceReplaySpec(
            paths=(str(path),), format="canonical", min_duration=110.0,
            max_duration=130.0,
        ).load_jobs()
        assert [j.duration for j in jobs] == [100.0 + i for i in range(10, 31)]

    def test_time_compression_scales_arrivals_not_durations(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec

        path = canonical_trace(tmp_path)
        plain = TraceReplaySpec(paths=(str(path),), format="canonical").load_jobs()
        packed = TraceReplaySpec(
            paths=(str(path),), format="canonical", time_compression=2.0
        ).load_jobs()
        assert packed[-1].arrival_time == pytest.approx(
            plain[-1].arrival_time / 2.0
        )
        assert [j.duration for j in packed] == [j.duration for j in plain]

    def test_glob_expansion_sorted(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec
        from repro.sim.job import Job
        from repro.workload.trace import write_trace_csv

        write_trace_csv([Job(0, 100.0, 60.0, (0.1, 0.1, 0.1))], tmp_path / "p-1.csv")
        write_trace_csv([Job(0, 0.0, 70.0, (0.1, 0.1, 0.1))], tmp_path / "p-0.csv")
        jobs = TraceReplaySpec(
            paths=(str(tmp_path / "p-*.csv"),), format="canonical"
        ).load_jobs()
        assert [j.duration for j in jobs] == [70.0, 60.0]  # arrival order

    def test_missing_file_and_empty_glob(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec

        with pytest.raises(FileNotFoundError):
            TraceReplaySpec(paths=(str(tmp_path / "nope.csv"),)).load_jobs()
        with pytest.raises(ValueError, match="matched no files"):
            TraceReplaySpec(paths=(str(tmp_path / "nope-*.csv"),)).load_jobs()

    def test_corrupt_fixture_raises(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec

        # A file in the wrong shape parses to zero usable jobs: that is a
        # loud error, not a silently empty experiment.
        bad = tmp_path / "corrupt.csv"
        bad.write_text("this,is,not\na,google,trace\n")
        with pytest.raises(ValueError, match="no usable jobs"):
            TraceReplaySpec(paths=(str(bad),)).load_jobs()
        # Canonical reader keeps its hard header error.
        with pytest.raises(ValueError, match="header"):
            TraceReplaySpec(paths=(str(bad),), format="canonical").load_jobs()

    def test_head_split_train_precedes_eval(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec

        spec = TraceReplaySpec(paths=(str(canonical_trace(tmp_path)),),
                               format="canonical")
        eval_jobs, segments = spec.build(20, n_train_segments=2, train_fraction=0.5)
        assert len(eval_jobs) == 20
        assert [len(s) for s in segments] == [10, 10]
        # Train on the past, evaluate on the future: the training jobs'
        # durations identify them as the head of the recording.
        train_durations = {j.duration for s in segments for j in s}
        assert train_durations == {100.0 + i for i in range(20)}
        assert {j.duration for j in eval_jobs} == {100.0 + i for i in range(20, 40)}

    def test_head_split_caps_request_to_recording(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec

        spec = TraceReplaySpec(paths=(str(canonical_trace(tmp_path)),),
                               format="canonical")
        eval_jobs, segments = spec.build(10_000, n_train_segments=1,
                                         train_fraction=0.5)
        # Training reserves at most half; evaluation takes the rest.
        assert len(eval_jobs) == 20
        assert [len(s) for s in segments] == [20]

    def test_strided_split_spans_whole_recording(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec

        spec = TraceReplaySpec(paths=(str(canonical_trace(tmp_path)),),
                               format="canonical", split="strided")
        eval_jobs, segments = spec.build(40, n_train_segments=1,
                                         train_fraction=1.0)
        assert len(eval_jobs) == 20
        assert [len(s) for s in segments] == [20]
        # Strided thinning: eval took every other job from the whole span.
        assert {j.duration for j in eval_jobs} == {100.0 + i for i in range(0, 40, 2)}

    def test_streams_rebased_and_renumbered(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec

        spec = TraceReplaySpec(paths=(str(canonical_trace(tmp_path)),),
                               format="canonical")
        eval_jobs, segments = spec.build(20, n_train_segments=1,
                                         train_fraction=0.5)
        for stream in [eval_jobs] + segments:
            assert stream[0].arrival_time == 0.0
            assert [j.job_id for j in stream] == list(range(len(stream)))

    def test_no_training_segments(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec

        spec = TraceReplaySpec(paths=(str(canonical_trace(tmp_path)),),
                               format="canonical")
        eval_jobs, segments = spec.build(15, n_train_segments=0,
                                         train_fraction=0.5)
        assert len(eval_jobs) == 15
        assert segments == []


class TestWorkloadReplayWiring:
    def test_replay_rejects_synthetic_layers(self):
        from repro.scenarios.specs import TraceReplaySpec

        replay = TraceReplaySpec(paths=("a.csv",))
        with pytest.raises(ValueError, match="flash crowds"):
            WorkloadSpec(replay=replay,
                         flash_crowds=(FlashCrowdSpec(0.1, 0.1, 2.0),))
        with pytest.raises(ValueError, match="burst coupling"):
            WorkloadSpec(replay=replay, burst_coupling=0.5)
        with pytest.raises(ValueError, match="rate_scale"):
            WorkloadSpec(replay=replay, rate_scale=2.0)
        with pytest.raises(ValueError, match="synthetic job classes"):
            WorkloadSpec(replay=replay,
                         classes=(JobClassSpec("custom", 1.0),))

    def test_burst_coupling_validation(self):
        with pytest.raises(ValueError, match="burst_coupling"):
            WorkloadSpec(burst_coupling=1.5)
        with pytest.raises(ValueError, match="compose"):
            WorkloadSpec(burst_coupling=0.5,
                         flash_crowds=(FlashCrowdSpec(0.1, 0.1, 2.0),))

    def test_build_is_seed_independent_for_replay(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec

        ws = WorkloadSpec(
            replay=TraceReplaySpec(paths=(str(canonical_trace(tmp_path)),),
                                   format="canonical"),
            n_train_segments=1,
        )
        a_eval, a_train = ws.build(10, 30, seed=0)
        b_eval, b_train = ws.build(10, 30, seed=99)
        assert a_eval == b_eval
        assert a_train == b_train

    def test_horizon_for_reads_recorded_span(self, tmp_path):
        from repro.scenarios.specs import TraceReplaySpec

        ws = WorkloadSpec(
            replay=TraceReplaySpec(paths=(str(canonical_trace(tmp_path)),),
                                   format="canonical"),
            n_train_segments=1,
        )
        eval_jobs, _ = ws.build(10, 30, seed=0)
        assert ws.horizon_for(10, 30) == eval_jobs[-1].arrival_time


class TestElectricityIdentity:
    def test_tariff_changes_content_key_only(self):
        from repro.sim.power import TariffModel

        base = ScenarioSpec(name="a", description="")
        priced = ScenarioSpec(
            name="a", description="",
            tariff=TariffModel.time_of_use(16, 21, 0.3, 0.1),
        )
        assert base.content_key() != priced.content_key()

    def test_replay_changes_content_key(self):
        from repro.scenarios.specs import TraceReplaySpec

        synthetic = ScenarioSpec(name="a", description="")
        replayed = ScenarioSpec(
            name="a", description="",
            workload=WorkloadSpec(replay=TraceReplaySpec(paths=("t.csv",))),
        )
        assert synthetic.content_key() != replayed.content_key()
        # Replay parameters are behavioral too.
        packed = ScenarioSpec(
            name="a", description="",
            workload=WorkloadSpec(
                replay=TraceReplaySpec(paths=("t.csv",), time_compression=2.0)
            ),
        )
        assert packed.content_key() != replayed.content_key()


class TestReplayCacheIdentity:
    def test_editing_the_trace_file_changes_the_content_key(self, tmp_path):
        # Regression: keys used to embed only the path string, so editing
        # a trace file silently served results computed from the old
        # contents.
        import os

        from repro.scenarios.specs import TraceReplaySpec

        path = canonical_trace(tmp_path)
        spec = ScenarioSpec(
            name="replay",
            description="",
            workload=WorkloadSpec(
                replay=TraceReplaySpec(paths=(str(path),), format="canonical"),
                n_train_segments=1,
            ),
        )
        key_before = spec.content_key()
        # Same path, different contents (and a distinct mtime).
        stat = path.stat()
        canonical_trace(tmp_path, n=41)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        assert spec.content_key() != key_before

    def test_editing_the_trace_file_invalidates_the_parse_cache(self, tmp_path):
        import os

        from repro.scenarios.specs import TraceReplaySpec

        path = canonical_trace(tmp_path, n=10)
        spec = TraceReplaySpec(paths=(str(path),), format="canonical")
        assert len(spec.load_jobs()) == 10
        stat = path.stat()
        canonical_trace(tmp_path, n=12)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        assert len(spec.load_jobs()) == 12  # not the stale 10-job parse

    def test_unresolvable_paths_still_key(self):
        from repro.scenarios.specs import TraceReplaySpec

        spec = ScenarioSpec(
            name="a", description="",
            workload=WorkloadSpec(replay=TraceReplaySpec(paths=("nope.csv",))),
        )
        other = ScenarioSpec(
            name="a", description="",
            workload=WorkloadSpec(replay=TraceReplaySpec(paths=("other.csv",))),
        )
        assert spec.content_key() != other.content_key()


class TestStridedCoverage:
    def test_strided_eval_spans_long_recordings(self, tmp_path):
        # Regression: the stride was fixed at n_train_segments + 1, so on
        # a recording much longer than the request both streams took only
        # the head instead of thinning the whole file.
        from repro.scenarios.specs import TraceReplaySpec

        path = canonical_trace(tmp_path, n=40)
        spec = TraceReplaySpec(paths=(str(path),), format="canonical",
                               split="strided")
        eval_jobs, segments = spec.build(10, n_train_segments=1,
                                         train_fraction=0.5)
        assert len(eval_jobs) == 10
        # stride = 40 // 10 = 4: eval picks indices 0, 4, ..., 36 — the
        # last pick sits at the tail of the recording, not its head.
        assert {j.duration for j in eval_jobs} == {100.0 + i for i in range(0, 40, 4)}
        assert [len(s) for s in segments] == [5]
        expected = {100.0 + i for i in (1, 5, 9, 13, 17)}
        assert {j.duration for j in segments[0]} == expected

    def test_stale_parse_is_replaced_not_retained(self, tmp_path):
        import os

        from repro.scenarios import specs
        from repro.scenarios.specs import TraceReplaySpec

        path = canonical_trace(tmp_path, n=10)
        spec = TraceReplaySpec(paths=(str(path),), format="canonical")
        spec.load_jobs()
        entries_before = len(specs._REPLAY_CACHE)
        stat = path.stat()
        canonical_trace(tmp_path, n=12)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        assert len(spec.load_jobs()) == 12
        # The edited file's stale parse was evicted in place, not pinned.
        assert len(specs._REPLAY_CACHE) == entries_before


class TestBuiltinFixtureAnchor:
    def test_google_replay_builds_from_any_cwd(self, tmp_path, monkeypatch):
        # Regression: the builtin fixture path was cwd-relative, so the
        # default `scenario sweep` (which includes every registered
        # scenario) crashed when run outside the repository root.
        from repro.scenarios import registry

        monkeypatch.chdir(tmp_path)
        spec = registry.get("google-replay")
        eval_jobs, train = spec.build_traces(40, seed=0)
        assert len(eval_jobs) == 40
        assert train
        assert spec.horizon_for(40) > 0
