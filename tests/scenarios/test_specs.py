"""ScenarioSpec / WorkloadSpec / FleetSpec construction and identity."""

import pytest

from repro.scenarios.specs import (
    CapacityWindowSpec,
    FleetSpec,
    FlashCrowdSpec,
    JobClassSpec,
    ScenarioSpec,
    ServerClassSpec,
    WorkloadSpec,
    groups_for,
    rolling_maintenance,
)
from repro.sim.power import PowerModel


class TestValidation:
    def test_scenario_needs_name(self):
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec(name="", description="x")

    def test_capacity_window_servers_must_exist(self):
        window = CapacityWindowSpec(0.1, 0.1, servers=(99,))
        with pytest.raises(ValueError, match="outside"):
            ScenarioSpec(name="s", description="", capacity_windows=(window,))

    def test_flash_crowd_bounds(self):
        with pytest.raises(ValueError):
            FlashCrowdSpec(1.0, 0.1, 2.0)
        with pytest.raises(ValueError):
            FlashCrowdSpec(0.1, 0.0, 2.0)
        with pytest.raises(ValueError):
            FlashCrowdSpec(0.1, 0.1, 1.0)

    def test_fleet_group_divisibility(self):
        with pytest.raises(ValueError, match="divisible"):
            FleetSpec(classes=(ServerClassSpec("a", 10),), num_groups=3)

    def test_rolling_maintenance_overrun_rejected(self):
        with pytest.raises(ValueError, match="overruns"):
            rolling_maintenance(30, 3, n_waves=10, spacing=0.15)


class TestFleetSpec:
    def test_homogeneous_has_no_model_list(self):
        fleet = FleetSpec()
        assert fleet.num_servers == 30
        assert fleet.power_models() is None
        assert not fleet.is_heterogeneous

    def test_heterogeneous_expansion(self):
        a, b = PowerModel(idle_power=50, peak_power=100), PowerModel()
        fleet = FleetSpec(
            classes=(ServerClassSpec("new", 2, a), ServerClassSpec("old", 3, b))
        )
        models = fleet.power_models()
        assert models == (a, a, b, b, b)
        assert fleet.num_servers == 5

    def test_groups_default(self):
        assert groups_for(30) == 3
        assert groups_for(40) == 4
        assert groups_for(7) == 1
        assert FleetSpec(classes=(ServerClassSpec("s", 8),)).groups() == 4


class TestExperimentConfig:
    def test_heterogeneous_config_round_trip(self):
        spec = ScenarioSpec(
            name="s",
            description="",
            fleet=FleetSpec(
                classes=(
                    ServerClassSpec("new", 2, PowerModel(idle_power=50, peak_power=100)),
                    ServerClassSpec("old", 2, PowerModel()),
                )
            ),
        )
        config = spec.experiment_config(seed=5)
        assert config.num_servers == 4
        assert config.power_models is not None
        assert len(config.power_models) == 4
        assert config.seed == 5
        assert config.fleet_power_models == config.power_models

    def test_homogeneous_uses_shared_model(self):
        config = ScenarioSpec(name="s", description="").experiment_config()
        assert config.power_models is None
        assert config.fleet_power_models is config.power_model


class TestTraces:
    def test_build_traces_deterministic(self):
        spec = ScenarioSpec(name="s", description="")
        a_eval, a_train = spec.build_traces(60, seed=4)
        b_eval, b_train = spec.build_traces(60, seed=4)
        assert a_eval == b_eval
        assert a_train == b_train

    def test_eval_and_train_streams_differ(self):
        spec = ScenarioSpec(name="s", description="")
        eval_jobs, train = spec.build_traces(250, seed=0)
        assert len(eval_jobs) == 250
        assert len(train) == 2
        assert train[0] != train[1]
        assert [j.duration for j in train[0][:20]] != [j.duration for j in eval_jobs[:20]]

    def test_capacity_events_scale_with_horizon(self):
        window = CapacityWindowSpec(0.5, 0.1, servers=(0, 1))
        spec = ScenarioSpec(name="s", description="", capacity_windows=(window,))
        events = spec.capacity_events(1000.0)
        assert len(events) == 2
        assert all(e.time == pytest.approx(500.0) for e in events)
        assert all(e.duration == pytest.approx(100.0) for e in events)


class TestContentKey:
    def test_stable_and_parameter_sensitive(self):
        a = ScenarioSpec(name="s", description="d")
        b = ScenarioSpec(name="s", description="d")
        assert a.content_key() == b.content_key()
        # Renames and re-wordings are cosmetic: cached results survive.
        renamed = ScenarioSpec(name="other", description="reworded")
        assert renamed.content_key() == a.content_key()
        # So are job/server class labels.
        relabeled = ScenarioSpec(
            name="s",
            description="d",
            workload=WorkloadSpec(classes=(JobClassSpec("renamed-class", 1.0),)),
        )
        assert relabeled.content_key() == a.content_key()
        # A single deep parameter change flips the key.
        c = ScenarioSpec(
            name="s",
            description="d",
            workload=WorkloadSpec(
                classes=(JobClassSpec("default", 1.0),), rate_scale=1.0001
            ),
        )
        assert c.content_key() != a.content_key()

    def test_content_dict_is_json_plain(self):
        import json

        spec = ScenarioSpec(
            name="s",
            description="d",
            fleet=FleetSpec(
                classes=(ServerClassSpec("x", 2, PowerModel(idle_power=50, peak_power=99)),)
            ),
            capacity_windows=(CapacityWindowSpec(0.1, 0.1, servers=(0,)),),
        )
        json.dumps(spec.content_dict())  # must not raise
