"""Sweep resumability and train-once/evaluate-many orchestration."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro.scenarios.checkpoints as checkpoints
import repro.scenarios.orchestrator as orchestrator
from repro.scenarios.checkpoints import CheckpointStore
from repro.scenarios.orchestrator import sweep
from repro.scenarios.specs import (
    FleetSpec,
    ScenarioSpec,
    ServerClassSpec,
    WorkloadSpec,
)
from repro.scenarios.store import ResultStore

REPO_ROOT = Path(__file__).resolve().parents[2]

TINY = ScenarioSpec(
    name="tiny-resume",
    description="4-server resume scenario",
    fleet=FleetSpec(classes=(ServerClassSpec("standard", 4),)),
    workload=WorkloadSpec(n_train_segments=1),
)

#: DRL-cell knobs that skip the expensive training phases; the
#: train-once plumbing (grouping, blobs, warm construction) is identical.
FAST_DRL = dict(n_jobs=60, pretrain=False, online_epochs=0, local_epochs=0)


class TestIncrementalJournal:
    def test_completed_cells_survive_a_mid_sweep_crash(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "cache")
        kwargs = dict(
            scenarios=[TINY],
            systems=("round-robin", "packing", "least-loaded"),
            seeds=(0,),
            n_jobs=60,
            workers=1,
            store=store,
            # Fail-fast, no retries: this test is about the journal
            # surviving a crash, not the quarantine machinery.
            on_error="raise",
            cell_retries=0,
        )
        real = orchestrator.run_cell
        calls = []

        def dying(scenario, system, **kw):
            calls.append(system)
            if len(calls) == 3:
                raise RuntimeError("worker died")
            return real(scenario, system, **kw)

        monkeypatch.setattr(orchestrator, "run_cell", dying)
        with pytest.raises(RuntimeError):
            sweep(**kwargs)
        # The two cells that finished before the crash are journaled.
        assert len(store) == 2

        monkeypatch.setattr(orchestrator, "run_cell", real)
        report = sweep(**kwargs)
        assert (report.n_cached, report.n_computed) == (2, 1)
        assert all(r is not None for r in report.results)

    def test_progress_reports_done_cached_total(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        kwargs = dict(
            scenarios=[TINY], systems=("round-robin", "packing"), seeds=(0,),
            n_jobs=60, workers=1, store=store,
        )
        lines: list[str] = []
        sweep(progress=lines.append, **kwargs)
        assert lines[0] == "# sweep: 2 cells, 0 journaled, 2 to compute"
        assert lines[-1].startswith("# [2/2]")
        lines.clear()
        sweep(progress=lines.append, **kwargs)
        assert lines[0] == "# sweep: 2 cells, 2 journaled, 0 to compute"


class TestSigkillResume:
    def test_killed_cli_sweep_resumes_without_recomputing_journaled_cells(
        self, tmp_path
    ):
        """Acceptance: SIGKILL a sweep mid-grid, --resume completes it."""
        cache = tmp_path / "cache"
        grid = dict(
            scenarios="paper-default",
            systems="round-robin,packing,least-loaded,random",
            seeds="0,1",
            jobs=400,
        )
        argv = [
            sys.executable, "-m", "repro", "scenario", "sweep",
            "--scenarios", grid["scenarios"], "--systems", grid["systems"],
            "--seeds", grid["seeds"], "--jobs", str(grid["jobs"]),
            "--workers", "2", "--cache-dir", str(cache),
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            argv, cwd=REPO_ROOT, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Wait for at least one journaled cell, then SIGKILL mid-sweep.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if len(list(cache.glob("*/*.json"))) >= 1:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)

        journaled = len(list(cache.glob("*/*.json")))
        assert journaled >= 1, "the sweep never journaled a completed cell"

        # Resume in-process with the same request: journaled cells must
        # come back as cache hits, only the rest recompute.
        report = sweep(
            scenarios=grid["scenarios"].split(","),
            systems=tuple(grid["systems"].split(",")),
            seeds=tuple(int(s) for s in grid["seeds"].split(",")),
            n_jobs=grid["jobs"],
            workers=2,
            store=ResultStore(cache),
        )
        assert report.n_cached == journaled
        assert report.n_cached + report.n_computed == 8
        assert all(r is not None for r in report.results)


class TestTrainOnce:
    def test_cells_sharing_scenario_and_seed_train_exactly_once(
        self, tmp_path, monkeypatch
    ):
        calls = []
        real = checkpoints.train_policy

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(checkpoints, "train_policy", counting)
        store = ResultStore(tmp_path / "cache")
        report = sweep(
            scenarios=[TINY],
            systems=("round-robin", "drl-only", "drl+fixed-30"),
            seeds=(0,),
            workers=1,
            store=store,
            **FAST_DRL,
        )
        assert len(calls) == 1  # two DRL cells, one training
        assert report.n_computed == 3
        assert len(CheckpointStore(store.root / "checkpoints")) == 1

    def test_checkpoint_reused_across_sweeps(self, tmp_path, monkeypatch):
        calls = []
        real = checkpoints.train_policy

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(checkpoints, "train_policy", counting)
        store = ResultStore(tmp_path / "cache")
        kwargs = dict(
            scenarios=[TINY], systems=("drl-only",), seeds=(0,),
            workers=1, store=store, **FAST_DRL,
        )
        sweep(**kwargs)
        assert len(calls) == 1
        # Same training key, different evaluation knob: result cache
        # misses, checkpoint hits — no second training.
        sweep(record_every=100, **kwargs)
        assert len(calls) == 1

    def test_seed_changes_training_group(self, tmp_path, monkeypatch):
        calls = []
        real = checkpoints.train_policy

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(checkpoints, "train_policy", counting)
        sweep(
            scenarios=[TINY], systems=("drl-only",), seeds=(0, 1),
            workers=1, store=ResultStore(tmp_path / "cache"), **FAST_DRL,
        )
        assert len(calls) == 2  # one policy per seed

    def test_warm_parallel_matches_serial(self, tmp_path):
        kwargs = dict(
            scenarios=[TINY],
            systems=("round-robin", "drl-only", "drl+fixed-30"),
            seeds=(0,),
            use_cache=False,
            **FAST_DRL,
        )
        serial = sweep(workers=1, **kwargs)
        parallel = sweep(workers=3, **kwargs)
        assert serial.results == parallel.results

    def test_no_warm_start_trains_per_cell(self, tmp_path, monkeypatch):
        calls = []
        real = checkpoints.train_policy

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(checkpoints, "train_policy", counting)
        report = sweep(
            scenarios=[TINY], systems=("drl-only", "drl+fixed-30"), seeds=(0,),
            workers=1, store=ResultStore(tmp_path / "cache"),
            warm_start=False, **FAST_DRL,
        )
        assert calls == []  # per-cell training path, no checkpoint phase
        assert report.n_computed == 2

    def test_warm_results_carry_series(self, tmp_path):
        report = sweep(
            scenarios=[TINY], systems=("drl-only",), seeds=(0,),
            workers=1, use_cache=False, **FAST_DRL,
        )
        result = report.results[0]
        assert result["latency_series"], "Fig-8 series missing"
        assert result["energy_series"]
        rows = report.series_rows()
        assert {row["series"] for row in rows} == {"latency", "energy", "cost", "co2"}
        assert all(np.isfinite(row["value"]) for row in rows)
