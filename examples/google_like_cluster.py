#!/usr/bin/env python3
"""A Google-trace-style experiment, end to end.

Reproduces the paper's workflow at reduced scale:

1. generate a synthetic Google-like workload segment (the paper splits
   the 2011 cluster trace into ~100 k-job week segments),
2. characterize it (arrival burstiness, durations, offered load),
3. write/read it through the canonical trace CSV format (drop a real
   extracted trace in the same format to use it instead),
4. regenerate a small Table I and the headline percentage claims.

Run:  python examples/google_like_cluster.py [n_jobs]
"""

import sys
import tempfile
from pathlib import Path

from repro.harness.claims import evaluate_claims
from repro.harness.table1 import render_table1, run_table1
from repro.workload.segments import split_segments
from repro.workload.stats import characterize
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace
from repro.workload.trace import read_trace_csv, write_trace_csv


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 2000

    # 1. Generate a week-like segment (rate scaled to the job count).
    base = SyntheticTraceConfig()
    config = SyntheticTraceConfig(n_jobs=n_jobs, horizon=n_jobs / base.base_rate)
    jobs = generate_trace(config, seed=42)

    # 2. Characterize.
    print("=== workload characterization ===")
    print(characterize(jobs).summary())

    # 3. Round-trip through the canonical CSV trace format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "segment.csv"
        write_trace_csv(jobs, path)
        jobs = read_trace_csv(path)
    print(f"\ntrace CSV round-trip ok ({len(jobs)} jobs)")

    # Segments, as the paper splits the month-long trace.
    segments = split_segments(jobs, segment_size=max(n_jobs // 4, 100))
    print(f"split into {len(segments)} segments of ~{len(segments[0])} jobs")

    # 4. Small-scale Table I on M = 30 (pass n_jobs=95000 for full scale).
    print("\n=== Table I (reduced scale) ===")
    rows = run_table1(n_jobs=n_jobs, cluster_sizes=(30,), seed=42)
    print(render_table1(rows))
    print()
    print(evaluate_claims(rows, num_servers=30).summary())


if __name__ == "__main__":
    main()
