"""Compare brokers under deterministic fault injection.

Runs the ``failure-storm`` scenario — the paper's 30-server fleet under
Poisson server crashes, 5% flaky jobs, and 3× stragglers — through a
heuristic baseline and the DRL global tier, then prints a side-by-side
resilience table. The storm is content-keyed and seeded independently
of the workload, so every system faces *exactly* the same crashes at
the same times, and re-running reproduces every number bit-for-bit.

Also shows the spec layer directly: a custom scenario with a
whole-site outage window, and what zero faults cost (nothing — the
run is bit-identical to the bare engine).

Run from the repository root::

    PYTHONPATH=src python examples/fault_injection.py
"""

from __future__ import annotations

from repro.faults.spec import FaultSpec
from repro.scenarios import registry
from repro.scenarios.orchestrator import run_cell

N_JOBS = 400
SEED = 0

COLUMNS = (
    ("completed", "n_jobs_completed", "{:>9d}"),
    ("failed", "failed_jobs", "{:>6d}"),
    ("retries", "retries", "{:>7d}"),
    ("goodput", "goodput", "{:>7.3f}"),
    ("avail", "availability", "{:>6.3f}"),
    ("latency (s)", "mean_latency_s", "{:>11.1f}"),
    ("energy (kWh)", "energy_kwh", "{:>12.2f}"),
)


def show(title: str, rows: dict[str, dict]) -> None:
    print(f"\n{title}")
    header = f"{'system':>14}" + "".join(f"  {name:>{len(fmt.format(0))}}"
                                         for name, _, fmt in COLUMNS)
    print(header)
    print("-" * len(header))
    for system, result in rows.items():
        cells = "".join(
            "  " + fmt.format(result[key]) for _, key, fmt in COLUMNS
        )
        print(f"{system:>14}{cells}")


def main() -> None:
    # 1. The builtin storm: every system sees the same crash schedule,
    #    the same per-job failure coin flips, the same stragglers.
    systems = ("round-robin", "least-loaded", "drl-only")
    storm = {
        system: run_cell("failure-storm", system, n_jobs=N_JOBS, seed=SEED)
        for system in systems
    }
    show(f"failure-storm ({N_JOBS} jobs, seed {SEED})", storm)

    # 2. Same workload, no faults: goodput and availability pin to 1,
    #    and the fault machinery costs nothing (it is never installed).
    calm = {
        system: run_cell("paper-default", system, n_jobs=N_JOBS, seed=SEED)
        for system in systems
    }
    show(f"paper-default, fault-free ({N_JOBS} jobs)", calm)

    # 3. A custom faulted scenario: specs are frozen dataclasses, so
    #    derive one with dataclasses.replace — here the paper fleet
    #    under pure crash pressure, no flaky jobs at all. (Site outage
    #    windows — FaultSpec(site_outages=(SiteOutageSpec(...),)) —
    #    need a federated scenario; see `degraded-federation` below.)
    import dataclasses

    crashy = dataclasses.replace(
        registry.get("paper-default"),
        name="demo-crashy",
        description="paper fleet under pure crash pressure",
        faults=FaultSpec(
            crashes_per_server=2.0,
            crash_recovery_fraction=0.05,
            max_retries=3,
            retry_backoff_s=30.0,
        ),
    )
    registry.register(crashy)
    crashed = {
        system: run_cell("demo-crashy", system, n_jobs=N_JOBS, seed=SEED)
        for system in ("round-robin", "least-loaded")
    }
    show(f"demo-crashy ({N_JOBS} jobs)", crashed)

    # 4. The builtin degraded federation: two of three sites take
    #    staggered outage windows; the dispatcher routes around them.
    degraded = {
        "least-loaded": run_cell(
            "degraded-federation", "least-loaded", n_jobs=N_JOBS, seed=SEED
        )
    }
    show(f"degraded-federation ({N_JOBS} jobs)", degraded)

    print(
        "\nDeterminism check: re-running the storm reproduces it exactly:",
        run_cell("failure-storm", "round-robin", n_jobs=N_JOBS, seed=SEED)
        == storm["round-robin"],
    )


if __name__ == "__main__":
    main()
