"""Compare federation-tier dispatch policies on a multi-site fleet.

Builds a three-site federation under a fully burst-coupled (coincident
peak) workload — the ``federated-correlated`` scenario with per-site
grids of very different carbon intensity — and asks the question the
federation tier exists for: does cross-site dispatch beat per-site
autonomy when every site's peak lands on the same minutes?

Each federation policy is swept as its own scenario variant (the policy
is part of the scenario's content key, so all results journal
independently under ``.repro-cache/``), then the fleet rows and per-site
breakdowns print side by side.

Run from the repository root::

    PYTHONPATH=src python examples/federated_sweep.py
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.scenarios import registry
from repro.scenarios.orchestrator import sweep
from repro.scenarios.specs import SiteSpec

POLICIES = ("home", "least-loaded", "carbon-greedy")


def main() -> None:
    base = registry.get("federated-correlated")
    variants = []
    for policy in POLICIES:
        variants.append(
            registry.register(
                replace(
                    base,
                    name=f"fed-{policy}",
                    description=f"{base.description.split(';')[0]}; {policy}",
                    federation=policy,
                ),
                overwrite=True,
            )
        )

    t0 = time.perf_counter()
    report = sweep(
        scenarios=[spec.name for spec in variants],
        systems=("round-robin",),
        seeds=(0,),
        n_jobs=400,
        progress=print,
    )
    elapsed = time.perf_counter() - t0
    print(f"\n{len(report.results)} cells in {elapsed:.1f} s "
          f"({report.n_cached} cached, {report.n_computed} computed)")
    # Fleet rows plus one row per site (scenario[site-name]): compare
    # the CO2 column — carbon-greedy should shift work onto the hydro
    # grid and off the coal one.
    print(report.render_table())

    # A federation of one is the single-cluster experiment, bit for bit
    # — handy to sanity-check a custom site layout against the classic
    # path before scaling it out.
    solo = replace(
        base,
        name="fed-solo",
        sites=(SiteSpec("solo", fleet=base.fleet, tariff=base.tariff),),
        federation="home",
        workload=replace(base.workload, burst_coupling=None),
    )
    registry.register(solo, overwrite=True)
    report = sweep(
        scenarios=["fed-solo"], systems=("round-robin",), seeds=(0,), n_jobs=200
    )
    print(report.render_table())


if __name__ == "__main__":
    main()
