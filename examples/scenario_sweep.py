"""Sweep the builtin scenario suite in parallel, with cached re-runs.

Runs a (scenario × system × seed) grid through the orchestrator —
every cell fans out over the machine's cores and lands in the
content-keyed store under ``.repro-cache/``, so a second invocation
returns instantly — then prints the aggregated paper-style table and
shows how to define and run a custom scenario.

Run from the repository root::

    PYTHONPATH=src python examples/scenario_sweep.py
"""

from __future__ import annotations

import time

from repro.scenarios import registry
from repro.scenarios.orchestrator import sweep
from repro.scenarios.specs import (
    FleetSpec,
    ScenarioSpec,
    ServerClassSpec,
    rolling_maintenance,
)


def main() -> None:
    print("registered scenarios:")
    print(registry.scenario_catalog())

    # 1. Sweep every builtin scenario with two baseline systems. Small
    #    job counts keep this a demo; raise n_jobs (and add "drl-only"
    #    or "hierarchical" to systems) for real comparisons — DRL cells
    #    sharing a (scenario, seed) then train their policy only once
    #    and warm-start from the checkpoint blob on every later sweep.
    #    Progress lines stream as cells complete; a killed run resumes
    #    from the journal (CLI: `scenario sweep --resume`).
    t0 = time.perf_counter()
    report = sweep(
        systems=("round-robin", "packing"),
        seeds=(0, 1),
        n_jobs=300,
        progress=print,
    )
    elapsed = time.perf_counter() - t0
    print(f"\nsweep: {len(report.results)} cells in {elapsed:.1f} s "
          f"({report.n_cached} cached, {report.n_computed} computed)")
    print(report.render_table())

    # 2. A custom scenario: a small fleet that loses a third of its
    #    servers to a mid-run maintenance wave.
    custom = ScenarioSpec(
        name="demo-churny-dozen",
        description="12 servers, one 4-server maintenance wave mid-run",
        fleet=FleetSpec(classes=(ServerClassSpec("standard", 12),)),
        capacity_windows=rolling_maintenance(
            num_servers=12, group_size=4, n_waves=1, first_start=0.4,
            duration_fraction=0.2,
        ),
    )
    registry.register(custom)
    custom_report = sweep(
        scenarios=["demo-churny-dozen"],
        systems=("round-robin", "packing"),
        n_jobs=300,
    )
    print("\ncustom scenario:")
    print(custom_report.render_table())


if __name__ == "__main__":
    main()
