"""Profile a federated run end to end with ``repro.obs``.

Runs the ``follow-the-sun`` scenario twice — once plain, once inside
``obs.capture()`` — to show the three things the telemetry layer
guarantees:

1. profiling changes *nothing* about the result (the two runs are
   bit-identical on every metric);
2. the span self-times partition the run's wall time, so the report's
   per-phase percentages are real attribution, not samples;
3. the snapshot is a plain JSON document: write it, load it, merge it
   with others (``obs.merge_snapshots``), render it later.

Run from the repository root::

    PYTHONPATH=src python examples/profile_run.py

The same telemetry is available without any code via the CLI::

    PYTHONPATH=src python -m repro scenario run follow-the-sun \
        price-greedy --profile
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import obs
from repro.scenarios.orchestrator import run_cell

N_JOBS = 400


def main() -> None:
    print(f"Running follow-the-sun x round-robin, {N_JOBS} jobs...\n")

    plain = run_cell("follow-the-sun", "round-robin", n_jobs=N_JOBS, seed=0)
    profiled = run_cell(
        "follow-the-sun", "round-robin", n_jobs=N_JOBS, seed=0, profile=True
    )

    # 1. Telemetry never perturbs the simulation: pop the snapshot and
    #    the profiled cell equals the plain one bit for bit.
    snapshot = profiled.pop("telemetry")
    assert profiled == plain, "profiling must not change results"
    print("profiled == plain result: OK (bit-identical)\n")

    # 2. The per-phase breakdown. Self-times partition the run span, so
    #    phase_coverage is the fraction of the run attributed to named
    #    phases (the acceptance bar for federated runs is >= 90%).
    print(obs.render_report(snapshot, top=10))
    print(f"\nphase coverage: {obs.phase_coverage(snapshot):.1%}")

    # Raw pieces, if the rendered table is not what you need:
    counters = snapshot["counters"]
    print(f"fed.decisions: {counters['fed.decisions']}, "
          f"remote-routed: {counters.get('fed.remote_routed', 0)}")
    depth = snapshot["gauges"]["events.queue_depth"]
    print(f"event queue depth: mean {depth['mean']:.1f}, max {depth['max']:.0f}")

    # 3. Snapshots are plain JSON — persist and re-render any time.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "telemetry.json"
        obs.write_snapshot(snapshot, path)
        again = obs.load_snapshot(path)
        print(f"\nround-tripped through {path.name}: "
              f"{len(again['spans'])} spans intact")


if __name__ == "__main__":
    main()
