#!/usr/bin/env python3
"""Quickstart: run the paper's three systems on a small synthetic cluster.

Builds a 6-server cluster, generates a short Google-like job trace, and
compares round-robin (always-on), DRL-only (ad-hoc sleeping), and the
full hierarchical framework on energy, latency, and average power.

Run:  python examples/quickstart.py
"""

from repro.core.config import ExperimentConfig, GlobalTierConfig
from repro.harness.report import format_table
from repro.harness.runner import standard_protocol
from repro.harness.table1 import make_traces


def main() -> None:
    num_servers = 6
    config = ExperimentConfig(
        num_servers=num_servers,
        global_tier=GlobalTierConfig(num_groups=2),
        seed=0,
    )
    # A 1200-job evaluation trace plus two 600-job training segments,
    # rate-scaled so the small cluster is sensibly loaded.
    eval_jobs, train_traces = make_traces(1200, num_servers, seed=0)

    print(f"Simulating {len(eval_jobs)} jobs on {num_servers} servers...\n")
    results = standard_protocol(
        ("round-robin", "drl-only", "hierarchical"),
        eval_jobs,
        config,
        train_traces,
    )

    rows = [
        [
            name,
            f"{r.energy_kwh:.2f}",
            f"{r.mean_latency:.0f}",
            f"{r.average_power:.0f}",
        ]
        for name, r in results.items()
    ]
    print(format_table(
        ["system", "energy (kWh)", "mean latency (s)", "avg power (W)"], rows
    ))

    rr, hier = results["round-robin"], results["hierarchical"]
    saving = 1.0 - hier.energy_kwh / rr.energy_kwh
    print(f"\nHierarchical framework energy saving vs round-robin: {saving:.1%}")


if __name__ == "__main__":
    main()
