"""Replay a recorded Google-format trace with electricity accounting.

Three stops:

1. replay the bundled Google task-events fixture through two systems and
   compare energy, cost, and CO₂ under a time-of-use tariff;
2. show how a CSV-driven carbon curve changes the *emissions* ranking
   without touching the energy numbers;
3. point the same machinery at your own trace files (real
   clusterdata-2011 part files drop straight in).

Run from the repository root::

    PYTHONPATH=src python examples/trace_replay.py
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.harness.runner import make_scenario_system, run_system
from repro.scenarios import registry
from repro.scenarios.specs import TraceReplaySpec
from repro.sim.power import TariffModel

FIXTURE = Path(__file__).resolve().parents[1] / "tests" / "fixtures"
TRACE = FIXTURE / "google_task_events_small.csv"


def evaluate(spec, system_name: str, n_jobs: int = 80):
    system, eval_jobs, events = make_scenario_system(
        system_name, spec, n_jobs, seed=0
    )
    return run_system(
        system, eval_jobs, record_every=50, capacity_events=events,
        tariff=spec.tariff,
    )


def main() -> None:
    # 1. The builtin replay scenario, re-pointed at the fixture by
    #    absolute path (the registered spec uses the repo-relative one)
    #    and billed under a 4x evening-peak tariff.
    spec = registry.get("google-replay")
    spec = replace(
        spec,
        workload=replace(
            spec.workload,
            replay=replace(spec.workload.replay, paths=(str(TRACE),)),
        ),
        tariff=TariffModel.time_of_use(16, 21, 0.32, 0.08),
    )
    print(f"replaying {TRACE.name}: "
          f"{len(spec.workload.replay.load_jobs())} usable jobs")
    for name in ("round-robin", "packing"):
        result = evaluate(spec, name)
        print(f"  {name:12s} energy {result.energy_kwh:6.2f} kWh   "
              f"cost ${result.cost_usd:5.2f}   CO2 {result.co2_kg:6.2f} kg   "
              f"mean latency {result.mean_latency:7.1f} s")

    # 2. Same jobs, same joules — a grid carbon curve only re-weights
    #    *when* they were drawn. Write a curve, load it, re-bill.
    curve = FIXTURE.parent.parent / ".repro-cache"
    curve.mkdir(exist_ok=True)
    curve_csv = curve / "example_carbon_curve.csv"
    curve_csv.write_text(
        "time_s,carbon_g_per_kwh\n0,150\n21600,380\n61200,550\n79200,200\n"
    )
    green = replace(spec, tariff=TariffModel.from_csv(curve_csv))
    result = evaluate(green, "packing")
    print(f"under the CSV carbon curve, packing emits {result.co2_kg:.2f} kg "
          f"for the same {result.energy_kwh:.2f} kWh")

    # 3. Your own traces: globs work, shards of the real trace replay in
    #    lexical order, and time_compression packs a long recording into
    #    a denser experiment.
    custom = TraceReplaySpec(
        paths=("/data/clusterdata-2011-2/task_events/part-*.csv",),
        time_compression=4.0,
        split="head",
    )
    print(f"(swap in real data via {custom.paths[0]!r} — or the CLI: "
          "`scenario run --name google-replay --trace <files>`)")


if __name__ == "__main__":
    main()
