#!/usr/bin/env python3
"""Extending the framework with your own broker and power policy.

The simulator is policy-agnostic: anything implementing
``repro.sim.Broker`` can dispatch jobs, and anything implementing
``repro.sim.PowerPolicy`` can manage a server's sleep state. This example
implements

* ``PowerAwareBroker`` — prefers awake servers with free capacity and
  only wakes a sleeping server when every awake one is saturated;
* ``HysteresisPolicy`` — a timeout that adapts with a simple multiplicative
  hysteresis rule (no RL): double the timeout after a "premature sleep"
  (the server was woken shortly after sleeping), halve it after a long
  undisturbed sleep;

and races them against the paper's systems.

Run:  python examples/custom_policy.py
"""

from repro.core.config import ExperimentConfig, GlobalTierConfig
from repro.core.hierarchical import HierarchicalSystem
from repro.harness.report import format_table
from repro.harness.runner import make_system, run_system
from repro.harness.table1 import make_traces
from repro.sim import Broker, Cluster, Job, PowerPolicy, Server


class PowerAwareBroker(Broker):
    """Greedy: first awake server where the job fits with an empty queue,
    else the awake server with the fewest jobs, else wake one."""

    def select_server(self, job: Job, cluster: Cluster, now: float) -> int:
        awake = [s for s in cluster.servers if s.state.is_on]
        for server in awake:
            if not server.pending and server.fits(job):
                return server.server_id
        asleep = [s for s in cluster.servers if not s.state.is_on]
        if asleep:
            return asleep[0].server_id
        return min(awake, key=lambda s: s.jobs_in_system).server_id


class HysteresisPolicy(PowerPolicy):
    """Adaptive timeout without RL: classic multiplicative hysteresis."""

    def __init__(self, initial: float = 60.0, floor: float = 5.0, cap: float = 600.0):
        self.timeout = initial
        self.floor = floor
        self.cap = cap
        self._slept_at: float | None = None

    def on_idle(self, server: Server, now: float) -> float:
        return self.timeout

    def on_active(self, server: Server, now: float, from_sleep: bool) -> None:
        if not from_sleep or self._slept_at is None:
            return
        asleep_for = now - self._slept_at
        if asleep_for < 2 * (server.power_model.t_on + server.power_model.t_off):
            # Premature sleep: we paid the transitions for almost nothing.
            self.timeout = min(self.timeout * 2.0, self.cap)
        else:
            self.timeout = max(self.timeout / 2.0, self.floor)
        self._slept_at = None

    def on_job_assigned(self, server: Server, job: Job, now: float) -> None:
        if not server.state.is_on and self._slept_at is None:
            self._slept_at = now


def main() -> None:
    num_servers = 6
    config = ExperimentConfig(
        num_servers=num_servers, global_tier=GlobalTierConfig(num_groups=2), seed=0
    )
    eval_jobs, train_traces = make_traces(1200, num_servers, seed=0)

    custom = HierarchicalSystem(
        name="custom (greedy + hysteresis)",
        broker=PowerAwareBroker(),
        policies=[HysteresisPolicy() for _ in range(num_servers)],
        config=config,
        initially_on=False,
    )

    rows = []
    for system in (
        make_system("round-robin", config),
        make_system("hierarchical", config, train_traces),
        custom,
    ):
        r = run_system(system, eval_jobs)
        rows.append([
            system.name, f"{r.energy_kwh:.2f}", f"{r.mean_latency:.0f}",
            f"{r.average_power:.0f}",
        ])

    print(format_table(
        ["system", "energy (kWh)", "mean latency (s)", "avg power (W)"], rows
    ))


if __name__ == "__main__":
    main()
