#!/usr/bin/env python3
"""Fig.-10-style power/latency trade-off sweep.

Sweeps the local tier's weight w (power vs. latency in Eqn. 5) for the
hierarchical framework and compares against the same DRL allocation tier
paired with fixed 30/60/90 s timeouts — the paper's Fig. 10. Prints the
curve points as CSV and the frontier savings.

Run:  python examples/tradeoff_sweep.py [n_jobs]
"""

import sys

from repro.harness.tradeoff import (
    frontier_savings,
    pareto_front,
    render_tradeoff_csv,
    run_tradeoff,
)


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1500

    print(f"Sweeping w and fixed timeouts on M=30, {n_jobs} jobs "
          "(this trains the global tier once, then reuses it)...\n")
    points = run_tradeoff(
        n_jobs=n_jobs,
        num_servers=30,
        seed=0,
        w_sweep=(0.1, 0.3, 0.5, 0.7, 0.9),
        timeouts=(30.0, 60.0, 90.0),
    )

    print(render_tradeoff_csv(points))

    print("\nPareto-optimal points:")
    for p in pareto_front(points):
        print(
            f"  {p.curve:14s} param={p.parameter:<5g} "
            f"energy={p.energy_per_job_wh:.3f} Wh/job "
            f"latency={p.mean_latency:.0f} s"
        )

    # "fixed" selects the union of the fixed-timeout points — the combined
    # baseline frontier (one timeout alone is a single point and cannot be
    # interpolated against).
    savings = frontier_savings(points, "hierarchical", "fixed")
    print(
        f"\nvs combined fixed-timeout frontier: max latency saving at equal "
        f"energy {savings['latency_saving']:+.1%}; max energy saving at "
        f"equal latency {savings['energy_saving']:+.1%}"
    )


if __name__ == "__main__":
    main()
