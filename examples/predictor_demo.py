#!/usr/bin/env python3
"""The local tier's LSTM workload predictor, in isolation (Sec. VI-A).

Trains the paper's predictor (35-step look-back, 30 LSTM hidden units,
Adam) on a bursty synthetic inter-arrival stream and compares it to the
naive last-value predictor, both in normalized MSE and in RL-category
accuracy (the discretized prediction is what the power manager consumes).

Run:  python examples/predictor_demo.py
"""

import numpy as np

from repro.core.config import PredictorConfig
from repro.core.predictor import WorkloadPredictor
from repro.workload.synthetic import SyntheticTraceConfig, generate_trace


def main() -> None:
    # A bursty, non-stationary arrival stream (the regime that breaks
    # linear predictors, per the paper's Sec. VI-A motivation).
    trace_cfg = SyntheticTraceConfig(n_jobs=4000, horizon=4000 / 0.16)
    jobs = generate_trace(trace_cfg, seed=7)
    series = np.diff([j.arrival_time for j in jobs])

    config = PredictorConfig(
        lookback=35,          # paper: 35 look-back steps
        hidden_units=30,      # paper: 30 LSTM hidden units
        n_categories=4,       # discretized categories -> RL states
        epochs=8,
        min_interarrival=0.5,
        max_interarrival=600.0,
    )
    predictor = WorkloadPredictor(config, rng=np.random.default_rng(0))

    split = int(len(series) * 0.7)
    print(f"Training on {split} inter-arrivals "
          f"(lookback={config.lookback}, hidden={config.hidden_units})...")
    history = predictor.fit(series[:split])
    print(f"training MSE: {history[0]:.4f} -> {history[-1]:.4f}")

    test = series[split:]
    look = config.lookback
    preds, naive, truth = [], [], []
    for i in range(len(test) - look):
        window = test[i : i + look]
        preds.append(predictor.predict_seconds(window))
        naive.append(window[-1])
        truth.append(test[i + look])
    preds, naive, truth = map(np.asarray, (preds, naive, truth))

    def norm_mse(a, b):
        return float(np.mean((predictor.transform(a) - predictor.transform(b)) ** 2))

    def cat_acc(a, b):
        ca = np.array([predictor.categorize(v) for v in a])
        cb = np.array([predictor.categorize(v) for v in b])
        return float(np.mean(ca == cb))

    print(f"\ntest samples: {len(truth)}")
    print(f"normalized MSE:    LSTM {norm_mse(preds, truth):.4f}   "
          f"last-value {norm_mse(naive, truth):.4f}")
    print(f"category accuracy: LSTM {cat_acc(preds, truth):.1%}   "
          f"last-value {cat_acc(naive, truth):.1%}")

    print("\nsample predictions (seconds):")
    for i in range(0, min(50, len(truth)), 10):
        print(f"  true={truth[i]:7.2f}  lstm={preds[i]:7.2f}  naive={naive[i]:7.2f}")


if __name__ == "__main__":
    main()
